package tensor

import "sync/atomic"

// flopCount accumulates the nominal FLOP count of every public matmul head
// (2·m·k·n per a[m,k]@b[k,n]-shaped product, multiply + add). "Nominal"
// means the dense count a GPU would pay and the paper's HFU arithmetic uses
// (§7): the serial kernels' zero-skips reduce executed work but not the
// counter, and internal data movement (the transposes inside TMatMul) is
// free. The counter is world-global — ranks are goroutines, so per-rank
// attribution happens at the step level via deltas (internal/metrics).
var flopCount atomic.Int64

// effFlopCount accumulates the effective (mask-aware) FLOP count: the work a
// kernel actually schedules after structural skipping. Dense matmuls add
// 2·m·k·n to both counters; the blocked attention kernels add the nominal
// count here minus the tile-skipped share via CountMatMulFLOPs. Effective is
// therefore always ≤ nominal, with equality when nothing is block-skipped.
// Value-level zero-skips inside the serial kernels are NOT subtracted: only
// tile-granular mask structure counts, so the number matches the closed-form
// prediction in metrics/xval exactly.
var effFlopCount atomic.Int64

// FLOPCount returns the total nominal matmul FLOPs issued since process
// start (or the last ResetFLOPCount).
func FLOPCount() int64 { return flopCount.Load() }

// EffectiveFLOPCount returns the total effective (mask-aware) matmul FLOPs
// issued since process start (or the last ResetFLOPCount).
func EffectiveFLOPCount() int64 { return effFlopCount.Load() }

// ResetFLOPCount zeroes both FLOP counters and returns the previous nominal
// value.
func ResetFLOPCount() int64 {
	effFlopCount.Store(0)
	return flopCount.Swap(0)
}

// countMatMul records one m×k×n matmul-shaped product executed densely.
func countMatMul(m, k, n int) {
	f := 2 * int64(m) * int64(k) * int64(n)
	flopCount.Add(f)
	effFlopCount.Add(f)
}

// CountMatMulFLOPs records one m×k×n matmul-shaped product whose executed
// work was reduced by structural (mask-tile) skipping: the nominal counter
// gains the full 2·m·k·n, the effective counter gains eff. It is the
// accounting hook for kernels outside this package (the blocked attention
// engine) that perform matmul-shaped sweeps themselves.
func CountMatMulFLOPs(m, k, n int, eff int64) {
	flopCount.Add(2 * int64(m) * int64(k) * int64(n))
	effFlopCount.Add(eff)
}
