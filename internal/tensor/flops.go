package tensor

import "sync/atomic"

// flopCount accumulates the nominal FLOP count of every public matmul head
// (2·m·k·n per a[m,k]@b[k,n]-shaped product, multiply + add). "Nominal"
// means the dense count a GPU would pay and the paper's HFU arithmetic uses
// (§7): the serial kernels' zero-skips reduce executed work but not the
// counter, and internal data movement (the transposes inside TMatMul) is
// free. The counter is world-global — ranks are goroutines, so per-rank
// attribution happens at the step level via deltas (internal/metrics).
var flopCount atomic.Int64

// FLOPCount returns the total nominal matmul FLOPs issued since process
// start (or the last ResetFLOPCount).
func FLOPCount() int64 { return flopCount.Load() }

// ResetFLOPCount zeroes the FLOP counter and returns the previous value.
func ResetFLOPCount() int64 { return flopCount.Swap(0) }

// countMatMul records one m×k×n matmul-shaped product.
func countMatMul(m, k, n int) {
	flopCount.Add(2 * int64(m) * int64(k) * int64(n))
}
