package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the FLOP count above which MatMul splits its output
// rows across goroutines. Row-parallel splitting preserves bitwise results:
// every output element is computed by exactly one goroutine in the same
// accumulation order as the serial kernel.
const parallelThreshold = 1 << 22

// MatMul returns a @ b for 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul %v @ %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if m > 1 && workers > 1 && m*k*n >= parallelThreshold {
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for lo := 0; lo < m; lo += chunk {
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matmulInto(out.Data[lo*n:hi*n], a.Data[lo*k:hi*k], b.Data, hi-lo, k, n)
			}(lo, hi)
		}
		wg.Wait()
		return out
	}
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// matmulInto computes out[m,n] = a[m,k] @ b[k,n] with an i-k-j loop order so
// the inner loop streams both b and out rows.
func matmulInto(out, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j := range bp {
				oi[j] += av * bp[j]
			}
		}
	}
}

// MatMulT returns a @ bᵀ for a [m,k] and b [n,k].
func MatMulT(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT %v @ %vᵀ", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			oi[j] = s
		}
	}
	return out
}

// TMatMul returns aᵀ @ b for a [k,m] and b [k,n] — the shape needed for
// weight gradients (dW = xᵀ @ dy).
func TMatMul(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul %vᵀ @ %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			oi := out.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
	return out
}

// TMatMulAcc accumulates aᵀ @ b into out, used for gradient accumulation
// across micro-batches (FP32 accumulation per §6.2).
func TMatMulAcc(out, a, b *Tensor) {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || out.Rows() != m || out.Cols() != n {
		panic(fmt.Sprintf("tensor: TMatMulAcc %vᵀ @ %v -> %v", a.Shape, b.Shape, out.Shape))
	}
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			oi := out.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := a.Rows(), a.Cols()
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// SoftmaxRow computes a numerically stable softmax of xs in place.
func SoftmaxRow(xs []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range xs {
		if v > maxv {
			maxv = v
		}
	}
	if math.IsInf(float64(maxv), -1) {
		// Entire row masked out: define the result as uniform zeros so a
		// fully-padded query attends to nothing (used by document masks).
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	var sum float32
	for i, v := range xs {
		e := float32(math.Exp(float64(v - maxv)))
		xs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range xs {
		xs[i] *= inv
	}
}

// SoftmaxRows applies SoftmaxRow to every row of a 2-D tensor in place.
func SoftmaxRows(a *Tensor) *Tensor {
	m := a.Rows()
	for i := 0; i < m; i++ {
		SoftmaxRow(a.Row(i))
	}
	return a
}

// ConcatRows stacks tensors with identical column counts along dimension 0.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		return New(0)
	}
	cols := parts[0].Cols()
	rows := 0
	for _, p := range parts {
		if p.Cols() != cols {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", p.Cols(), cols))
		}
		rows += p.Rows()
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}

// ConcatCols concatenates 2-D tensors with identical row counts along
// dimension 1 — the reassembly step after column-parallel linear layers.
func ConcatCols(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		return New(0)
	}
	rows := parts[0].Rows()
	cols := 0
	for _, p := range parts {
		if p.Rows() != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", p.Rows(), rows))
		}
		cols += p.Cols()
	}
	out := New(rows, cols)
	off := 0
	for _, p := range parts {
		pc := p.Cols()
		for i := 0; i < rows; i++ {
			copy(out.Data[i*cols+off:i*cols+off+pc], p.Row(i))
		}
		off += pc
	}
	return out
}

// SplitCols splits a 2-D tensor into n equal column blocks (copies).
func SplitCols(a *Tensor, n int) []*Tensor {
	rows, cols := a.Rows(), a.Cols()
	if cols%n != 0 {
		panic(fmt.Sprintf("tensor: SplitCols %d %% %d != 0", cols, n))
	}
	w := cols / n
	out := make([]*Tensor, n)
	for s := 0; s < n; s++ {
		t := New(rows, w)
		for i := 0; i < rows; i++ {
			copy(t.Row(i), a.Data[i*cols+s*w:i*cols+(s+1)*w])
		}
		out[s] = t
	}
	return out
}

// SplitRows splits a 2-D tensor into n equal row blocks (views).
func SplitRows(a *Tensor, n int) []*Tensor {
	rows := a.Rows()
	if rows%n != 0 {
		panic(fmt.Sprintf("tensor: SplitRows %d %% %d != 0", rows, n))
	}
	h := rows / n
	out := make([]*Tensor, n)
	for s := 0; s < n; s++ {
		out[s] = a.RowSlice(s*h, (s+1)*h)
	}
	return out
}
