package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the FLOP count above which the matmul kernels split
// their output rows across goroutines. Row-parallel splitting preserves
// bitwise results: every output element is computed by exactly one goroutine
// in the same accumulation order as the serial kernel, so the split is
// invisible to the paper's §6.2 bitwise-match debugging methodology.
const parallelThreshold = 1 << 22

// copyThreshold is the element count above which memory-bound kernels
// (Transpose) split their output rows across goroutines.
const copyThreshold = 1 << 20

// Cache-blocking tile sizes for the serial kernels. Tiles keep the streamed
// operand slab resident in L1/L2 while the other operand is swept past it.
// Tiling never reorders the per-element accumulation: for every output
// element the reduction index still increases monotonically, which is what
// keeps tiled, untiled, and row-parallel runs bitwise identical.
const (
	tileK = 128 // reduction-dim tile of the i-k-j MatMul kernel
	tileJ = 64  // output-column tile of the dot-product MatMulT/TMatMul kernels
	tileT = 32  // square tile edge of the blocked Transpose kernel
)

// Workers returns the number of row-parallel workers a kernel producing
// `rows` output rows at `work` scalar operations should use: 1 below the
// FLOP threshold, else up to GOMAXPROCS capped by the row count.
func Workers(rows, work int) int {
	if rows <= 1 || work < parallelThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > rows {
		w = rows
	}
	return w
}

// ParallelRows partitions [0, rows) into `workers` contiguous chunks and
// runs body once per chunk, on separate goroutines when workers > 1. Chunk
// boundaries carry no numeric meaning: callers must ensure body computes
// each row independently of the split (row-parallel kernels do), which makes
// the result bitwise independent of the worker count.
func ParallelRows(rows, workers int, body func(lo, hi int)) {
	if workers <= 1 || rows <= 1 {
		body(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a @ b for 2-D tensors a [m,k] and b [k,n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul %v @ %v", a.Shape, b.Shape))
	}
	countMatMul(m, k, n)
	out := Get(m, n)
	matMulRows(out, a, b, Workers(m, m*k*n))
	return out
}

// MatMulInto computes dst = a @ b, overwriting dst ([m,n]). The
// destination-passing variant of MatMul for callers that recycle buffers.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulInto %v @ %v -> %v", a.Shape, b.Shape, dst.Shape))
	}
	countMatMul(m, k, n)
	dst.Zero()
	matMulRows(dst, a, b, Workers(m, m*k*n))
}

// matMulRows runs the serial MatMul kernel over row chunks. out must be
// zeroed: the kernel accumulates.
func matMulRows(out, a, b *Tensor, workers int) {
	m, k := a.Rows(), a.Cols()
	n := b.Cols()
	if workers <= 1 { // skip the closure: it heap-allocates even when unused
		matmulInto(out.Data, a.Data, b.Data, m, k, n)
		return
	}
	ParallelRows(m, workers, func(lo, hi int) {
		matmulInto(out.Data[lo*n:hi*n], a.Data[lo*k:hi*k], b.Data, hi-lo, k, n)
	})
}

// matmulInto accumulates out[m,n] += a[m,k] @ b[k,n] with an i-k-j loop
// order, blocked over k so a tileK-row slab of b stays cache-resident while
// each output row sweeps it. Four reduction indices are fused per output-row
// sweep, quartering the out load/store traffic; within a fused group the
// adds still land in increasing-p order as four separately rounded +=, and
// a term is skipped exactly when its a value is zero, so the result is
// bitwise identical to the one-p-at-a-time kernel.
func matmulInto(out, a, b []float32, m, k, n int) {
	for pt := 0; pt < k; pt += tileK {
		pHi := pt + tileK
		if pHi > k {
			pHi = k
		}
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			oi := out[i*n : (i+1)*n]
			p := pt
			for ; p+3 < pHi; p += 4 {
				a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b[p*n : (p+1)*n]
				b1 := b[(p+1)*n : (p+2)*n]
				b2 := b[(p+2)*n : (p+3)*n]
				b3 := b[(p+3)*n : (p+4)*n]
				if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
					for j := range oi {
						v := oi[j]
						v += a0 * b0[j]
						v += a1 * b1[j]
						v += a2 * b2[j]
						v += a3 * b3[j]
						oi[j] = v
					}
					continue
				}
				// Mixed zero/nonzero group: keep the per-term skip. The
				// branch conditions are loop-invariant, so prediction is
				// perfect.
				for j := range oi {
					v := oi[j]
					if a0 != 0 {
						v += a0 * b0[j]
					}
					if a1 != 0 {
						v += a1 * b1[j]
					}
					if a2 != 0 {
						v += a2 * b2[j]
					}
					if a3 != 0 {
						v += a3 * b3[j]
					}
					oi[j] = v
				}
			}
			for ; p < pHi; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := b[p*n : (p+1)*n]
				for j := range bp {
					oi[j] += av * bp[j]
				}
			}
		}
	}
}

// MatMulT returns a @ bᵀ for a [m,k] and b [n,k] — the attention-score path
// (S = Q @ Kᵀ).
func MatMulT(a, b *Tensor) *Tensor {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT %v @ %vᵀ", a.Shape, b.Shape))
	}
	countMatMul(m, k, n)
	out := GetUninit(m, n)
	matMulTRows(out, a, b, Workers(m, m*k*n))
	return out
}

// MatMulTInto computes dst = a @ bᵀ, overwriting dst ([m,n]).
func MatMulTInto(dst, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	n, k2 := b.Rows(), b.Cols()
	if k != k2 || dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulTInto %v @ %vᵀ -> %v", a.Shape, b.Shape, dst.Shape))
	}
	countMatMul(m, k, n)
	matMulTRows(dst, a, b, Workers(m, m*k*n))
}

func matMulTRows(out, a, b *Tensor, workers int) {
	m, k := a.Rows(), a.Cols()
	n := b.Rows()
	if workers <= 1 {
		matmulTInto(out.Data, a.Data, b.Data, m, k, n)
		return
	}
	ParallelRows(m, workers, func(lo, hi int) {
		matmulTInto(out.Data[lo*n:hi*n], a.Data[lo*k:hi*k], b.Data, hi-lo, k, n)
	})
}

// matmulTInto overwrites out[m,n] = a[m,k] @ b[n,k]ᵀ. The j loop is blocked
// so a tileJ-row slab of b stays cache-resident across the i sweep, and four
// b rows are walked together per a row — one pass of ai feeds four
// accumulators, quartering the ai load traffic that dominates the dot
// kernel. Every element is still a single running sum over p in increasing
// order, so blocking, the 4-way grouping, and row splits are all bitwise
// invisible.
func matmulTInto(out, a, b []float32, m, k, n int) {
	for jt := 0; jt < n; jt += tileJ {
		jHi := jt + tileJ
		if jHi > n {
			jHi = n
		}
		for i := 0; i < m; i++ {
			ai := a[i*k : (i+1)*k]
			oi := out[i*n : (i+1)*n]
			j := jt
			for ; j+3 < jHi; j += 4 {
				b0 := b[j*k : (j+1)*k]
				b1 := b[(j+1)*k : (j+2)*k]
				b2 := b[(j+2)*k : (j+3)*k]
				b3 := b[(j+3)*k : (j+4)*k]
				var s0, s1, s2, s3 float32
				for p, av := range ai {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				oi[j], oi[j+1], oi[j+2], oi[j+3] = s0, s1, s2, s3
			}
			for ; j < jHi; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				oi[j] = s
			}
		}
	}
}

// TMatMul returns aᵀ @ b for a [k,m] and b [k,n] — the shape needed for
// weight gradients (dW = xᵀ @ dy).
func TMatMul(a, b *Tensor) *Tensor {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul %vᵀ @ %v", a.Shape, b.Shape))
	}
	countMatMul(m, k, n)
	out := Get(m, n)
	tMatMulRows(out, a, b, Workers(m, m*k*n))
	return out
}

// TMatMulInto computes dst = aᵀ @ b, overwriting dst ([m,n]).
func TMatMulInto(dst, a, b *Tensor) {
	checkTMatMul(dst, a, b, "TMatMulInto")
	countMatMul(a.Cols(), a.Rows(), b.Cols())
	dst.Zero()
	tMatMulRows(dst, a, b, Workers(a.Cols(), a.Rows()*a.Cols()*b.Cols()))
}

// TMatMulAcc accumulates aᵀ @ b into out, used for gradient accumulation
// across micro-batches (FP32 accumulation per §6.2).
func TMatMulAcc(out, a, b *Tensor) {
	checkTMatMul(out, a, b, "TMatMulAcc")
	countMatMul(a.Cols(), a.Rows(), b.Cols())
	tMatMulRows(out, a, b, Workers(a.Cols(), a.Rows()*a.Cols()*b.Cols()))
}

func checkTMatMul(out, a, b *Tensor, op string) {
	k, m := a.Rows(), a.Cols()
	k2, n := b.Rows(), b.Cols()
	if k != k2 || out.Rows() != m || out.Cols() != n {
		panic(fmt.Sprintf("tensor: %s %vᵀ @ %v -> %v", op, a.Shape, b.Shape, out.Shape))
	}
}

// tMatMulRows runs the TMatMul kernel over output-row chunks. out
// accumulates (callers zero it for the overwrite semantics). Both operands
// are transposed up front (pure data movement, pooled buffers) so the
// reduction walks contiguous rows instead of strided columns; every output
// element (i,j) then sums a[p,i]·b[p,j] over p in increasing order with the
// same per-term zero-skip as the column-order kernel, so the rewrite — and
// any row split across workers — is bitwise identical to the original
// p-outer loop.
func tMatMulRows(out, a, b *Tensor, workers int) {
	k, m := a.Rows(), a.Cols()
	n := b.Cols()
	aT := GetUninit(m, k)
	bT := GetUninit(n, k)
	TransposeInto(aT, a)
	TransposeInto(bT, b)
	if workers <= 1 {
		tmatmulAcc(out.Data, aT.Data, bT.Data, k, m, n, 0, m)
	} else {
		ParallelRows(m, workers, func(lo, hi int) {
			tmatmulAcc(out.Data, aT.Data, bT.Data, k, m, n, lo, hi)
		})
	}
	Put(aT, bT)
}

// tmatmulAcc accumulates out[lo:hi,:] += (aTᵀᵀ @ bTᵀ)[lo:hi,:] given the
// TRANSPOSED operands aT [m,k] and bT [n,k]. Each output element is a
// register dot seeded from the existing out value, summing aT[i,p]·bT[j,p]
// in increasing p; four bT rows share one aT-row pass, and the j loop is
// blocked so the bT slab stays cache-resident across the i sweep. A term is
// skipped exactly when its aT value is zero (one branch guards all four
// chains), matching the column-order kernel's skip — accumulating in a
// register instead of memory performs the identical sequence of float32
// rounding steps, so the result is bitwise unchanged.
func tmatmulAcc(out, aT, bT []float32, k, m, n, lo, hi int) {
	for jt := 0; jt < n; jt += tileJ {
		jHi := jt + tileJ
		if jHi > n {
			jHi = n
		}
		for i := lo; i < hi; i++ {
			ai := aT[i*k : (i+1)*k]
			oi := out[i*n : (i+1)*n]
			// One scan decides the inner loop: dense rows take the
			// branch-free path (the skip would never fire, so both paths
			// perform the same rounding sequence); rows with zeros — e.g.
			// masked attention probabilities — keep the exact per-term skip.
			dense := true
			for _, av := range ai {
				if av == 0 {
					dense = false
					break
				}
			}
			j := jt
			for ; j+3 < jHi; j += 4 {
				b0 := bT[j*k : (j+1)*k]
				b1 := bT[(j+1)*k : (j+2)*k]
				b2 := bT[(j+2)*k : (j+3)*k]
				b3 := bT[(j+3)*k : (j+4)*k]
				s0, s1, s2, s3 := oi[j], oi[j+1], oi[j+2], oi[j+3]
				if dense {
					for p, av := range ai {
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
				} else {
					for p, av := range ai {
						if av == 0 {
							continue
						}
						s0 += av * b0[p]
						s1 += av * b1[p]
						s2 += av * b2[p]
						s3 += av * b3[p]
					}
				}
				oi[j], oi[j+1], oi[j+2], oi[j+3] = s0, s1, s2, s3
			}
			for ; j < jHi; j++ {
				bj := bT[j*k : (j+1)*k]
				s := oi[j]
				for p, av := range ai {
					if av == 0 {
						continue
					}
					s += av * bj[p]
				}
				oi[j] = s
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	out := GetUninit(a.Cols(), a.Rows())
	transposeRows(out, a, runtime.GOMAXPROCS(0), a.Len())
	return out
}

// TransposeInto computes dst = aᵀ, overwriting dst ([cols(a), rows(a)]).
func TransposeInto(dst, a *Tensor) {
	if dst.Rows() != a.Cols() || dst.Cols() != a.Rows() {
		panic(fmt.Sprintf("tensor: TransposeInto %v -> %v", a.Shape, dst.Shape))
	}
	transposeRows(dst, a, runtime.GOMAXPROCS(0), a.Len())
}

// transposeRows splits the output rows (input columns) across goroutines
// when the element count warrants it; each chunk runs the blocked serial
// kernel. A pure permutation: trivially bitwise under any split.
func transposeRows(out, a *Tensor, workers, elems int) {
	m, n := a.Rows(), a.Cols()
	if workers > 1 && elems < copyThreshold {
		workers = 1
	}
	if workers <= 1 {
		transposeBlock(out.Data, a.Data, m, n, 0, n)
		return
	}
	ParallelRows(n, workers, func(lo, hi int) {
		transposeBlock(out.Data, a.Data, m, n, lo, hi)
	})
}

// transposeBlock writes out[j,i] = a[i,j] for j in [lo,hi), in tileT×tileT
// blocks so both the strided reads and the sequential writes hit cache lines
// that are still resident.
func transposeBlock(out, a []float32, m, n, lo, hi int) {
	for jt := lo; jt < hi; jt += tileT {
		jHi := jt + tileT
		if jHi > hi {
			jHi = hi
		}
		for it := 0; it < m; it += tileT {
			iHi := it + tileT
			if iHi > m {
				iHi = m
			}
			for j := jt; j < jHi; j++ {
				oj := out[j*m : (j+1)*m]
				for i := it; i < iHi; i++ {
					oj[i] = a[i*n+j]
				}
			}
		}
	}
}

// SoftmaxRow computes a numerically stable softmax of xs in place.
func SoftmaxRow(xs []float32) {
	maxv := float32(math.Inf(-1))
	for _, v := range xs {
		if v > maxv {
			maxv = v
		}
	}
	if math.IsInf(float64(maxv), -1) {
		// Entire row masked out: define the result as uniform zeros so a
		// fully-padded query attends to nothing (used by document masks).
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	var sum float32
	for i, v := range xs {
		e := float32(math.Exp(float64(v - maxv)))
		xs[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range xs {
		xs[i] *= inv
	}
}

// SoftmaxRows applies SoftmaxRow to every row of a 2-D tensor in place.
func SoftmaxRows(a *Tensor) *Tensor {
	m := a.Rows()
	for i := 0; i < m; i++ {
		SoftmaxRow(a.Row(i))
	}
	return a
}

// ConcatRows stacks tensors with identical column counts along dimension 0.
// The result is a fresh tensor; inputs are copied, never aliased.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		return New(0)
	}
	cols := parts[0].Cols()
	rows := 0
	for _, p := range parts {
		if p.Cols() != cols {
			panic(fmt.Sprintf("tensor: ConcatRows column mismatch %d vs %d", p.Cols(), cols))
		}
		rows += p.Rows()
	}
	out := GetUninit(rows, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}

// ConcatCols concatenates 2-D tensors with identical row counts along
// dimension 1 — the reassembly step after column-parallel linear layers.
// The result is a fresh tensor; inputs are copied, never aliased.
func ConcatCols(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		return New(0)
	}
	rows := parts[0].Rows()
	cols := 0
	for _, p := range parts {
		if p.Rows() != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", p.Rows(), rows))
		}
		cols += p.Cols()
	}
	out := GetUninit(rows, cols)
	ConcatColsInto(out, parts...)
	return out
}

// ConcatColsInto assembles parts column-wise into dst ([rows, Σcols]),
// overwriting it. The destination-passing variant of ConcatCols.
func ConcatColsInto(dst *Tensor, parts ...*Tensor) {
	rows, cols := dst.Rows(), dst.Cols()
	off := 0
	for _, p := range parts {
		pc := p.Cols()
		if p.Rows() != rows {
			panic(fmt.Sprintf("tensor: ConcatColsInto row mismatch %d vs %d", p.Rows(), rows))
		}
		for i := 0; i < rows; i++ {
			copy(dst.Data[i*cols+off:i*cols+off+pc], p.Row(i))
		}
		off += pc
	}
	if off != cols {
		panic(fmt.Sprintf("tensor: ConcatColsInto wants %d columns, parts have %d", cols, off))
	}
}

// SplitCols splits a 2-D tensor into n equal column blocks.
//
// Aliasing contract: the blocks are COPIES — mutating a block never affects
// a, unlike SplitRows whose results alias a. Callers needing a single block
// should use ColBlock, which copies only that block.
func SplitCols(a *Tensor, n int) []*Tensor {
	cols := a.Cols()
	if cols%n != 0 {
		panic(fmt.Sprintf("tensor: SplitCols %d %% %d != 0", cols, n))
	}
	out := make([]*Tensor, n)
	for s := 0; s < n; s++ {
		out[s] = ColBlock(a, n, s)
	}
	return out
}

// ColBlock returns a copy of column block i of a split into n equal blocks —
// what a TP rank extracts from a full tensor without materialising the other
// n−1 blocks (the copy-heavy path SplitCols forces).
func ColBlock(a *Tensor, n, i int) *Tensor {
	rows, cols := a.Rows(), a.Cols()
	if cols%n != 0 {
		panic(fmt.Sprintf("tensor: ColBlock %d %% %d != 0", cols, n))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("tensor: ColBlock %d of %d", i, n))
	}
	w := cols / n
	t := GetUninit(rows, w)
	for r := 0; r < rows; r++ {
		copy(t.Row(r), a.Data[r*cols+i*w:r*cols+(i+1)*w])
	}
	return t
}

// SplitRows splits a 2-D tensor into n equal row blocks.
//
// Aliasing contract: the blocks are VIEWS sharing a's storage — mutating a
// block is visible in a and vice versa (the zero-copy row sharding the
// collectives rely on). This is the opposite of SplitCols, which must copy
// because column blocks are not contiguous.
func SplitRows(a *Tensor, n int) []*Tensor {
	rows := a.Rows()
	if rows%n != 0 {
		panic(fmt.Sprintf("tensor: SplitRows %d %% %d != 0", rows, n))
	}
	h := rows / n
	out := make([]*Tensor, n)
	for s := 0; s < n; s++ {
		out[s] = a.RowSlice(s*h, (s+1)*h)
	}
	return out
}
