package tensor

import (
	"sync"
	"sync/atomic"
)

// Pool is a size-keyed free list of tensors: an arena for the functional
// layer's hot loops, where every op otherwise allocates a fresh output and
// GC churn dominates larger configs. Get reuses a retired tensor of the
// exact element count when one is available; Put retires a tensor for reuse.
//
// Ownership rules (see DESIGN.md "Performance of the functional layer"):
//
//   - Put transfers ownership to the pool: the caller must hold no live
//     references — including views made with Row, RowSlice, or Reshape —
//     to the tensor afterwards.
//   - Get returns a zeroed tensor (like New); GetUninit skips the zeroing
//     for destinations that are fully overwritten.
//   - Putting is always optional: an un-Put tensor is simply garbage
//     collected, so pooling never changes results, only allocation counts.
//
// A Pool is safe for concurrent use; reductions in the comm package and
// row-parallel kernels may Get/Put from many rank goroutines at once.
type Pool struct {
	mu   sync.Mutex
	free map[int][]*Tensor

	gets, hits, puts, rejects int64 // guarded by mu

	// tags breaks the traffic down by caller-supplied tag for the
	// GetTag/PutTag entry points. Tagged ops count in both the global
	// counters and their tag's counters, so a tag's share of the arena
	// traffic is directly comparable to the totals.
	tags map[string]*PoolStats // guarded by mu
}

// PoolStats reports pool traffic: Gets (and how many were served from the
// free list), Puts, and Puts rejected by the safety checks.
type PoolStats struct {
	Gets, Hits, Puts, Rejects int64
}

// NewPool creates an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int][]*Tensor)}
}

// Get returns a zeroed tensor of the given shape, reusing a retired tensor
// of the same element count when possible. A nil pool degrades to New.
func (p *Pool) Get(shape ...int) *Tensor {
	t := p.GetUninit(shape...)
	if t != nil {
		t.Zero()
	}
	return t
}

// GetUninit returns a tensor of the given shape with UNDEFINED contents —
// for destinations the caller fully overwrites (MatMulTInto, Transpose,
// Clone). A nil pool degrades to New (which zeroes).
func (p *Pool) GetUninit(shape ...int) *Tensor {
	return p.getUninitTagged("", shape)
}

// GetTag is Get with the traffic attributed to tag in addition to the
// global counters — how a subsystem (the serving KV-cache's page frames,
// for instance) keeps its arena footprint distinguishable from the rest of
// the world's Get/Put churn.
func (p *Pool) GetTag(tag string, shape ...int) *Tensor {
	t := p.getUninitTagged(tag, shape)
	if t != nil {
		t.Zero()
	}
	return t
}

// GetUninitTag is GetUninit with the traffic attributed to tag.
func (p *Pool) GetUninitTag(tag string, shape ...int) *Tensor {
	return p.getUninitTagged(tag, shape)
}

// tagLocked returns tag's counter block, creating it on first use.
// Caller holds p.mu.
func (p *Pool) tagLocked(tag string) *PoolStats {
	if p.tags == nil {
		p.tags = make(map[string]*PoolStats)
	}
	s := p.tags[tag]
	if s == nil {
		s = &PoolStats{}
		p.tags[tag] = s
	}
	return s
}

func (p *Pool) getUninitTagged(tag string, shape []int) *Tensor {
	if p == nil {
		return New(shape...)
	}
	n := 1
	for _, s := range shape {
		if s < 0 {
			return New(shape...) // let New produce the canonical panic
		}
		n *= s
	}
	p.mu.Lock()
	p.gets++
	var ts *PoolStats
	if tag != "" {
		ts = p.tagLocked(tag)
		ts.Gets++
	}
	l := p.free[n]
	if len(l) == 0 {
		p.mu.Unlock()
		return New(shape...)
	}
	t := l[len(l)-1]
	l[len(l)-1] = nil
	p.free[n] = l[:len(l)-1]
	p.hits++
	if ts != nil {
		ts.Hits++
	}
	p.mu.Unlock()
	t.setShape(shape)
	return t
}

// Put retires tensors into the pool for reuse. Nil tensors are skipped, as
// are tensors whose data slice does not own its full backing array
// (len != cap) — the cheap guard against retiring a view whose parent is
// still live. A nil pool discards everything.
func (p *Pool) Put(ts ...*Tensor) {
	p.putTagged("", ts)
}

// PutTag is Put with the traffic attributed to tag. Pair it with GetTag
// so a tag's Gets−Puts delta reads as that subsystem's leak count.
func (p *Pool) PutTag(tag string, ts ...*Tensor) {
	p.putTagged(tag, ts)
}

func (p *Pool) putTagged(tag string, ts []*Tensor) {
	if p == nil {
		return
	}
	for _, t := range ts {
		if t == nil || len(t.Data) == 0 {
			continue
		}
		if len(t.Data) != cap(t.Data) {
			p.mu.Lock()
			p.rejects++
			if tag != "" {
				p.tagLocked(tag).Rejects++
			}
			p.mu.Unlock()
			continue
		}
		n := len(t.Data)
		p.mu.Lock()
		p.puts++
		if tag != "" {
			p.tagLocked(tag).Puts++
		}
		p.free[n] = append(p.free[n], t)
		p.mu.Unlock()
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Gets: p.gets, Hits: p.hits, Puts: p.puts, Rejects: p.rejects}
}

// TagStats returns a snapshot of the per-tag counters: one PoolStats per
// tag that has seen at least one GetTag/PutTag. The map is a copy.
func (p *Pool) TagStats() map[string]PoolStats {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.tags) == 0 {
		return nil
	}
	out := make(map[string]PoolStats, len(p.tags))
	for k, v := range p.tags {
		out[k] = *v
	}
	return out
}

// Reset drops every retired tensor (releasing the memory to the GC) and
// clears the counters, including the per-tag breakdown.
func (p *Pool) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = make(map[int][]*Tensor)
	p.gets, p.hits, p.puts, p.rejects = 0, 0, 0, 0
	p.tags = nil
}

// setShape points t at a (possibly different) shape with the same element
// count, reusing the Shape slice when capacity allows.
func (t *Tensor) setShape(shape []int) {
	if cap(t.Shape) >= len(shape) {
		t.Shape = t.Shape[:len(shape)]
		copy(t.Shape, shape)
		return
	}
	t.Shape = append([]int(nil), shape...)
}

// defaultPool is the arena behind the package-level Get/GetUninit/Put used
// by the kernels and the model hot paths. poolingOn gates it so benchmarks
// and bisection runs can measure the unpooled baseline.
var (
	defaultPool = NewPool()
	poolingOn   atomic.Bool
)

func init() { poolingOn.Store(true) }

// SetPooling enables or disables the default pool, returning the previous
// setting. With pooling disabled Get degrades to New and Put discards —
// the pre-arena allocation behaviour, kept reachable so the benchmark suite
// can report before/after allocation counts from one binary.
func SetPooling(on bool) bool {
	return poolingOn.Swap(on)
}

// PoolingEnabled reports whether the default pool is active.
func PoolingEnabled() bool { return poolingOn.Load() }

// Get returns a zeroed tensor from the default pool (or New when pooling is
// disabled).
func Get(shape ...int) *Tensor {
	if !poolingOn.Load() {
		return New(shape...)
	}
	return defaultPool.Get(shape...)
}

// GetUninit returns a tensor with undefined contents from the default pool
// (or a zeroed New when pooling is disabled). Callers must fully overwrite.
func GetUninit(shape ...int) *Tensor {
	if !poolingOn.Load() {
		return New(shape...)
	}
	return defaultPool.GetUninit(shape...)
}

// GetClone returns a deep copy of t backed by the default pool.
func GetClone(t *Tensor) *Tensor {
	out := GetUninit(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Put retires tensors into the default pool (a no-op when pooling is
// disabled). See Pool.Put for the ownership rules.
func Put(ts ...*Tensor) {
	if !poolingOn.Load() {
		return
	}
	defaultPool.Put(ts...)
}

// GetTag returns a zeroed tensor from the default pool with the traffic
// attributed to tag. With pooling disabled it degrades to New and the tag
// counters stay untouched (so Gets == Puts still holds trivially).
func GetTag(tag string, shape ...int) *Tensor {
	if !poolingOn.Load() {
		return New(shape...)
	}
	return defaultPool.GetTag(tag, shape...)
}

// GetUninitTag returns an uninitialized tensor from the default pool with
// the traffic attributed to tag. Callers must fully overwrite.
func GetUninitTag(tag string, shape ...int) *Tensor {
	if !poolingOn.Load() {
		return New(shape...)
	}
	return defaultPool.GetUninitTag(tag, shape...)
}

// PutTag retires tensors into the default pool with the traffic attributed
// to tag (a no-op when pooling is disabled).
func PutTag(tag string, ts ...*Tensor) {
	if !poolingOn.Load() {
		return
	}
	defaultPool.PutTag(tag, ts...)
}

// DefaultPoolStats returns the default pool's counters.
func DefaultPoolStats() PoolStats { return defaultPool.Stats() }

// DefaultPoolTagStats returns the default pool's per-tag counters.
func DefaultPoolTagStats() map[string]PoolStats { return defaultPool.TagStats() }

// ResetDefaultPool drops the default pool's retired tensors and counters.
func ResetDefaultPool() { defaultPool.Reset() }
