package tensor

import (
	"sync"
	"testing"
)

// TestFLOPCountAllHeads verifies every public matmul head counts 2·m·k·n
// nominal FLOPs for its effective [m,k]@[k,n] product — regardless of which
// operand is transposed or whether the destination is caller-supplied.
func TestFLOPCountAllHeads(t *testing.T) {
	const m, k, n = 3, 5, 7
	const want = 2 * m * k * n
	a := New(m, k)   // [m,k]
	bt := New(n, k)  // for a @ bᵀ
	at := New(k, m)  // for aᵀ @ b
	b := New(k, n)   // [k,n]
	dst := New(m, n)
	acc := New(m, n) // for TMatMul heads: out is [a.Cols, b.Cols] = [m,n] with at [k,m]

	heads := []struct {
		name string
		run  func()
	}{
		{"MatMul", func() { MatMul(a, b) }},
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulT", func() { MatMulT(a, bt) }},
		{"MatMulTInto", func() { MatMulTInto(dst, a, bt) }},
		{"TMatMul", func() { TMatMul(at, b) }},
		{"TMatMulInto", func() { TMatMulInto(acc, at, b) }},
		{"TMatMulAcc", func() { TMatMulAcc(acc, at, b) }},
	}
	for _, h := range heads {
		before := FLOPCount()
		h.run()
		if got := FLOPCount() - before; got != want {
			t.Errorf("%s: counted %d FLOPs, want %d", h.name, got, want)
		}
	}
}

// TestResetFLOPCount checks the swap semantics: the previous total comes
// back and the counter restarts from zero.
func TestResetFLOPCount(t *testing.T) {
	ResetFLOPCount()
	MatMul(New(2, 3), New(3, 4))
	if prev := ResetFLOPCount(); prev != 2*2*3*4 {
		t.Errorf("ResetFLOPCount returned %d, want %d", prev, 2*2*3*4)
	}
	if got := FLOPCount(); got != 0 {
		t.Errorf("counter after reset = %d, want 0", got)
	}
}

// TestFLOPCountConcurrent checks the counter loses no updates under the
// goroutine-per-rank execution model.
func TestFLOPCountConcurrent(t *testing.T) {
	const workers, iters = 8, 50
	const per = 2 * 2 * 3 * 4
	before := FLOPCount()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, b := New(2, 3), New(3, 4)
			for i := 0; i < iters; i++ {
				MatMul(a, b)
			}
		}()
	}
	wg.Wait()
	if got := FLOPCount() - before; got != workers*iters*per {
		t.Errorf("counted %d FLOPs, want %d", got, workers*iters*per)
	}
}
