//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race detector.
// Large-world conformance sweeps consult it to cap world size — the
// dedicated -race storm test covers the thousand-rank path, so the full grid
// need not pay the detector's per-goroutine cost twice.
const RaceEnabled = true
