// Package testutil holds small helpers shared by the repo's tests — notably
// stdout capture, which lets each examples/ program's smoke test run its real
// main() and assert on the printed numbers.
package testutil

import (
	"io"
	"os"
	"sync"
)

// CaptureStdout runs f with os.Stdout redirected into a pipe and returns
// everything it printed. The pipe is drained concurrently, so output larger
// than the kernel pipe buffer cannot deadlock the caller.
func CaptureStdout(f func()) string {
	orig := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		panic(err)
	}
	os.Stdout = w
	var (
		buf []byte
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf, _ = io.ReadAll(r)
	}()
	defer func() {
		os.Stdout = orig
	}()
	f()
	w.Close()
	wg.Wait()
	os.Stdout = orig
	return string(buf)
}
