package pp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over randomly drawn schedule shapes: the flexible schedule
// must be structurally valid, deadlock-free, and respect its analytic
// memory/bubble relationships for ANY (pp, v, nmb, nc), which is exactly
// the paper's §3.1.1 claim of arbitrary-batch-size support.

type schedShape struct {
	pp, v, nmb, nc int
}

func drawShape(rng *rand.Rand) schedShape {
	return schedShape{
		pp:  1 + rng.Intn(6),
		v:   1 + rng.Intn(4),
		nmb: 1 + rng.Intn(12),
		nc:  1 + rng.Intn(14),
	}
}

func TestPropertyFlexibleAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := drawShape(rng)
		sched := NewFlexible(s.pp, s.v, s.nmb, s.nc)
		return sched.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFlexibleNeverDeadlocks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := drawShape(rng)
		sched := NewFlexible(s.pp, s.v, s.nmb, s.nc)
		tl, err := sched.Simulate(UniformCosts(1, rng.Float64()))
		if err != nil {
			return false
		}
		return len(tl.Intervals) == sched.PP*2*sched.TMB()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllFwdAllBwdValidAndComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := drawShape(rng)
		sched := NewAllFwdAllBwd(s.pp, s.v, s.nmb)
		if sched.Validate() != nil {
			return false
		}
		_, err := sched.Simulate(UniformCosts(1, 0))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPeakInFlightBounds(t *testing.T) {
	// 0 < peak ≤ tmb for every rank, and all-F-all-B achieves the maximum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := drawShape(rng)
		flex := NewFlexible(s.pp, s.v, s.nmb, s.nc)
		for _, p := range flex.PeakInFlight() {
			if p <= 0 || p > flex.TMB() {
				return false
			}
		}
		all := NewAllFwdAllBwd(s.pp, s.v, s.nmb)
		return all.MaxPeakInFlight() == all.TMB() &&
			flex.MaxPeakInFlight() <= all.MaxPeakInFlight()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWarmupMonotoneInRank(t *testing.T) {
	// Earlier pipeline ranks never warm up with fewer micro-batches than
	// later ones (they must fill the pipe ahead of their consumers).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := drawShape(rng)
		prev := 1 << 30
		for r := 0; r < s.pp; r++ {
			w := Warmup(s.pp, s.v, s.nmb, s.nc, r)
			if w > prev {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStageLayerCountsConserve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nStages := 1 + rng.Intn(16)
		nLayers := nStages + rng.Intn(64)
		for _, balanced := range []bool{false, true} {
			counts := StageLayerCounts(nLayers, nStages, balanced)
			sum := 0
			for _, c := range counts {
				if c < 0 {
					return false
				}
				sum += c
			}
			if sum != nLayers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreMicrobatchesNeverHurtBubble(t *testing.T) {
	// Doubling nmb must not increase the bubble ratio (at zero P2P cost).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pp := 2 + rng.Intn(4)
		v := 1 + rng.Intn(3)
		nmb := pp * (1 + rng.Intn(3))
		a, err := NewFlexible(pp, v, nmb, pp).Simulate(UniformCosts(1, 0))
		if err != nil {
			return false
		}
		b, err := NewFlexible(pp, v, 2*nmb, pp).Simulate(UniformCosts(1, 0))
		if err != nil {
			return false
		}
		return b.BubbleRatio() <= a.BubbleRatio()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
