package pp

import (
	"math"
	"strings"
	"testing"
)

func TestWarmupMatchesPaperExample(t *testing.T) {
	// Fig 2: pp=3, v=2, nc=3 → warm-up 7, 5, 3 for ranks 0, 1, 2.
	want := []int{7, 5, 3}
	for r, w := range want {
		if got := Warmup(3, 2, 6, 3, r); got != w {
			t.Fatalf("rank %d warmup = %d, want %d", r, got, w)
		}
	}
}

func TestWarmupClampsToTMB(t *testing.T) {
	if got := Warmup(8, 4, 1, 8, 0); got > 4 {
		t.Fatalf("warmup %d exceeds tmb=4", got)
	}
}

func TestWarmupDegeneratesWhenNCSmall(t *testing.T) {
	// nc < pp ⇒ all-forward-all-backward (§3.1.1).
	if got := Warmup(4, 2, 8, 2, 1); got != 16 {
		t.Fatalf("nc<pp warmup = %d, want tmb=16", got)
	}
}

func TestSchedulesValidate(t *testing.T) {
	scheds := []*Schedule{
		NewInterleaved1F1B(4, 2, 8),
		NewAllFwdAllBwd(4, 2, 8),
		NewFlexible(4, 2, 8, 6),
		NewFlexible(4, 2, 5, 3), // nmb not a multiple of pp: the paper's flexibility claim
		NewFlexible(2, 1, 3, 2),
		NewFlexible(1, 1, 4, 4),
		NewFlexible(3, 2, 7, 5),
	}
	for _, s := range scheds {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s pp=%d v=%d nmb=%d nc=%d: %v", s.Name, s.PP, s.V, s.NMB, s.NC, err)
		}
	}
}

func TestInterleavedRequiresMultiple(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1F1B with nmb %% pp != 0 must panic")
		}
	}()
	NewInterleaved1F1B(4, 2, 6)
}

func TestSimulateAllSchedulesComplete(t *testing.T) {
	costs := UniformCosts(1, 0.2)
	for _, s := range []*Schedule{
		NewInterleaved1F1B(4, 2, 8),
		NewAllFwdAllBwd(4, 2, 8),
		NewFlexible(4, 2, 8, 6),
		NewFlexible(4, 2, 5, 3),
		NewFlexible(3, 3, 7, 4),
	} {
		tl, err := s.Simulate(costs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(tl.Intervals) != s.PP*2*s.TMB() {
			t.Fatalf("%s executed %d intervals", s.Name, len(tl.Intervals))
		}
	}
}

func TestSimulateDetectsDeadlock(t *testing.T) {
	s := &Schedule{Name: "bad", PP: 1, V: 1, NMB: 1, NC: 1,
		Ranks: [][]Op{{{Kind: Bwd, Stage: 0, MB: 0}, {Kind: Fwd, Stage: 0, MB: 0}}}}
	if _, err := s.Simulate(UniformCosts(1, 0)); err == nil {
		t.Fatal("backward-before-forward must deadlock")
	}
}

func TestBubbleRatioMatchesClassicFormula(t *testing.T) {
	// (pp−1)/(nmb·v) with zero P2P cost (§3.1.1).
	for _, tc := range []struct{ pp, v, nmb int }{{4, 1, 8}, {4, 2, 8}, {8, 1, 16}, {2, 2, 4}} {
		s := NewInterleaved1F1B(tc.pp, tc.v, tc.nmb)
		tl, err := s.Simulate(UniformCosts(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tc.pp-1) / float64(tc.nmb*tc.v)
		got := tl.BubbleRatio()
		if got < want*0.6 || got > want*1.7 {
			t.Fatalf("pp=%d v=%d nmb=%d: bubble %v, formula %v", tc.pp, tc.v, tc.nmb, got, want)
		}
	}
}

func TestBubbleShrinksWithMoreMicrobatches(t *testing.T) {
	bubble := func(nmb int) float64 {
		tl, err := NewInterleaved1F1B(4, 2, nmb).Simulate(UniformCosts(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		return tl.BubbleRatio()
	}
	if !(bubble(16) < bubble(8) && bubble(8) < bubble(4)) {
		t.Fatalf("bubble must shrink with nmb: %v %v %v", bubble(4), bubble(8), bubble(16))
	}
}

func TestBubbleRatioBsVsPP(t *testing.T) {
	// §7.3.1: bs = 2·pp gives a materially smaller bubble than bs = pp.
	pp, v := 4, 2
	tlA, _ := NewFlexible(pp, v, 2*pp, pp).Simulate(UniformCosts(1, 0.05))
	tlB, _ := NewFlexible(pp, v, pp, pp).Simulate(UniformCosts(1, 0.05))
	if !(tlA.BubbleRatio() < tlB.BubbleRatio()*0.7) {
		t.Fatalf("bs=2pp bubble %v not much smaller than bs=pp bubble %v",
			tlA.BubbleRatio(), tlB.BubbleRatio())
	}
}

func TestExtraWarmupHidesP2P(t *testing.T) {
	// Fig 3: with exposed P2P latency, nc > pp (extra warm-up micro-batches)
	// reduces the makespan relative to nc = pp.
	pp, v, nmb := 4, 2, 12
	costs := UniformCosts(1, 0.6)
	base, err := NewFlexible(pp, v, nmb, pp).Simulate(costs)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := NewFlexible(pp, v, nmb, pp+2).Simulate(costs)
	if err != nil {
		t.Fatal(err)
	}
	if extra.Makespan >= base.Makespan {
		t.Fatalf("nc>pp makespan %v not better than nc=pp %v", extra.Makespan, base.Makespan)
	}
}

func TestPeakInFlightOrdering(t *testing.T) {
	// Memory: 1F1B < flexible(nc>pp) < all-forward-all-backward (Fig 9b).
	pp, v, nmb := 4, 2, 12
	p1 := NewFlexible(pp, v, nmb, pp).MaxPeakInFlight()
	pf := NewFlexible(pp, v, nmb, pp+2).MaxPeakInFlight()
	pa := NewAllFwdAllBwd(pp, v, nmb).MaxPeakInFlight()
	if !(p1 < pf && pf < pa) {
		t.Fatalf("peak in-flight ordering violated: 1f1b=%d flexible=%d allFallB=%d", p1, pf, pa)
	}
	if pa != nmb*v {
		t.Fatalf("all-F-all-B peak = %d, want tmb=%d", pa, nmb*v)
	}
}

func TestPeakInFlightGrowsByFormula(t *testing.T) {
	// §3.1.1: nc > pp costs (nc−pp)·(v−1) extra in-flight micro-batches.
	pp, v, nmb := 4, 3, 12
	base := NewFlexible(pp, v, nmb, pp).PeakInFlight()[0]
	for _, nc := range []int{5, 6} {
		got := NewFlexible(pp, v, nmb, nc).PeakInFlight()[0]
		want := base + (nc-pp)*(v-1)
		if got != want {
			t.Fatalf("nc=%d: rank-0 peak %d, want %d", nc, got, want)
		}
	}
}

func TestThroughputComplementsBubble(t *testing.T) {
	s := NewInterleaved1F1B(4, 2, 8)
	tl, _ := s.Simulate(UniformCosts(1, 0))
	util := tl.Throughput()
	if math.Abs(util-1/(1+tl.BubbleRatio())) > 1e-9 {
		t.Fatalf("throughput %v inconsistent with bubble %v", util, tl.BubbleRatio())
	}
}

func TestStageLayerCounts(t *testing.T) {
	c := StageLayerCounts(8, 4, false)
	for _, n := range c {
		if n != 2 {
			t.Fatalf("uniform counts = %v", c)
		}
	}
	b := StageLayerCounts(8, 4, true)
	if b[0] != 1 || b[3] != 1 {
		t.Fatalf("balanced counts = %v", b)
	}
	sum := 0
	for _, n := range b {
		sum += n
	}
	if sum != 8 {
		t.Fatalf("balanced counts sum = %d", sum)
	}
	// The paper's production shape: 126 layers, 16 ranks, v=1 per-rank view.
	p := StageLayerCounts(126, 16, true)
	total := 0
	for _, n := range p {
		total += n
	}
	if total != 126 || p[0] >= p[1] || p[15] >= p[14] {
		t.Fatalf("405B layer counts = %v", p)
	}
}

func BenchmarkSimulate1F1B(b *testing.B) {
	s := NewInterleaved1F1B(16, 2, 32)
	costs := UniformCosts(1, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Simulate(costs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRenderScheduleGrid(t *testing.T) {
	s := NewFlexible(3, 2, 6, 3)
	out, err := s.Render()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 rank rows, got %d:\n%s", len(lines), out)
	}
	// Fig 2's warm-up on rank 0: seven forwards (0 1 2 0 1 2 3) lead the row.
	if !strings.Contains(lines[0], "0F 1F 2F 0F 1F 2F 3F") {
		t.Fatalf("rank 0 warm-up not as in Fig 2:\n%s", out)
	}
	if !strings.Contains(out, "B") || !strings.Contains(out, ".") {
		t.Fatalf("render must show backwards and idle slots:\n%s", out)
	}
}

func TestExposedP2PTime(t *testing.T) {
	tl, err := NewInterleaved1F1B(4, 1, 8).Simulate(UniformCosts(1, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if tl.ExposedP2PTime() <= 0 {
		t.Fatal("stall time must be positive with nonzero P2P cost")
	}
	// Zero P2P still has fill/drain idle, but less of it.
	tl0, _ := NewInterleaved1F1B(4, 1, 8).Simulate(UniformCosts(1, 0))
	if tl0.ExposedP2PTime() >= tl.ExposedP2PTime() {
		t.Fatal("P2P cost must increase stall time")
	}
}

func TestOpKindString(t *testing.T) {
	if Fwd.String() != "F" || Bwd.String() != "B" {
		t.Fatal("op kind strings wrong")
	}
}

func TestValidateCatchesCorruptSchedules(t *testing.T) {
	s := NewInterleaved1F1B(2, 1, 2)
	// Out-of-range micro-batch.
	bad := &Schedule{Name: "x", PP: 2, V: 1, NMB: 2, NC: 2,
		Ranks: [][]Op{{{Kind: Fwd, Stage: 0, MB: 5}}, {}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range op must fail validation")
	}
	// Duplicate op.
	dup := &Schedule{Name: "x", PP: 1, V: 1, NMB: 1, NC: 1,
		Ranks: [][]Op{{{Kind: Fwd, Stage: 0, MB: 0}, {Kind: Fwd, Stage: 0, MB: 0}}}}
	if dup.Validate() == nil {
		t.Fatal("duplicate op must fail validation")
	}
	// Missing ops.
	missing := &Schedule{Name: "x", PP: 1, V: 1, NMB: 2, NC: 1,
		Ranks: [][]Op{{{Kind: Fwd, Stage: 0, MB: 0}, {Kind: Bwd, Stage: 0, MB: 0}}}}
	if missing.Validate() == nil {
		t.Fatal("missing ops must fail validation")
	}
	_ = s
}
