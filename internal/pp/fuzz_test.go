package pp

import (
	"strings"
	"testing"
)

// buildSchedule invokes one constructor and reports whether it panicked and
// with what message. Constructors are documented to panic — with a "pp: "
// prefixed message, never a runtime error — on non-positive dims and (for
// interleaved 1F1B) nmb not divisible by pp.
func buildSchedule(kind, ppN, v, nmb, nc int) (s *Schedule, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			if msg, ok := r.(string); ok {
				panicMsg = msg
			} else {
				panicMsg = "non-string panic"
			}
			s = nil
		}
	}()
	switch kind {
	case 0:
		return NewFlexible(ppN, v, nmb, nc), ""
	case 1:
		return NewInterleaved1F1B(ppN, v, nmb), ""
	default:
		return NewAllFwdAllBwd(ppN, v, nmb), ""
	}
}

// FuzzScheduleConstruction throws adversarial dimensions at every schedule
// constructor: invalid dims must produce the documented descriptive panic
// (never a runtime error like integer divide by zero), and any schedule that
// does come back must validate and simulate cleanly.
func FuzzScheduleConstruction(f *testing.F) {
	f.Add(0, 2, 2, 4, 2)
	f.Add(1, 4, 1, 8, 0)
	f.Add(2, 3, 2, 5, 0)
	f.Add(1, 0, 1, 1, 1)   // div-by-zero regression: 1F1B with pp=0
	f.Add(0, -1, 1, 1, 1)  // negative dim
	f.Add(1, 3, 1, 4, 0)   // nmb % pp != 0
	f.Add(0, 1, 1, 7, -5)  // nc below range: clamped, not rejected
	f.Add(0, 1, 1, 3, 999) // nc above range: clamped, not rejected
	f.Fuzz(func(t *testing.T, kind, ppN, v, nmb, nc int) {
		kind = ((kind % 3) + 3) % 3
		valid := ppN >= 1 && v >= 1 && nmb >= 1
		if valid && (kind != 1 || nmb%ppN == 0) &&
			int64(ppN)*int64(v)*int64(nmb) > 4096 {
			t.Skip("bound schedule size")
		}
		s, panicMsg := buildSchedule(kind, ppN, v, nmb, nc)
		if !valid || (kind == 1 && nmb%ppN != 0) {
			if panicMsg == "" {
				t.Fatalf("kind=%d pp=%d v=%d nmb=%d nc=%d: invalid dims accepted", kind, ppN, v, nmb, nc)
			}
			if !strings.HasPrefix(panicMsg, "pp: ") {
				t.Fatalf("kind=%d pp=%d v=%d nmb=%d: undocumented panic %q", kind, ppN, v, nmb, panicMsg)
			}
			return
		}
		if panicMsg != "" {
			t.Fatalf("kind=%d pp=%d v=%d nmb=%d nc=%d: unexpected panic %q", kind, ppN, v, nmb, nc, panicMsg)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("kind=%d pp=%d v=%d nmb=%d nc=%d: constructed schedule invalid: %v", kind, ppN, v, nmb, nc, err)
		}
		if s.NC < 1 || s.NC > s.NMB {
			t.Fatalf("nc=%d not clamped into [1, %d]", s.NC, s.NMB)
		}
		tl, err := s.Simulate(UniformCosts(1, 0))
		if err != nil {
			t.Fatalf("simulating valid schedule: %v", err)
		}
		// Bubble ratio idle/busy is unbounded above (pp=80, nmb=1 idles
		// ~79× its compute) but never negative, and the corresponding
		// utilisation fraction must land in (0, 1].
		if br := tl.BubbleRatio(); br < 0 {
			t.Fatalf("negative bubble ratio %v", br)
		}
		if u := tl.Throughput(); u <= 0 || u > 1 {
			t.Fatalf("utilisation %v outside (0, 1]", u)
		}
		if peaks := s.PeakInFlight(); len(peaks) != s.PP {
			t.Fatalf("PeakInFlight returned %d ranks, want %d", len(peaks), s.PP)
		}
	})
}
