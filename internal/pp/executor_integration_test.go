package pp_test

// Executor integration tests live in an external test package because they
// drive the executor with internal/data batches, and data imports pp (the
// planned-batch packer simulates micro-batch orderings through
// pp.Schedule) — an import cycle for an in-package test.

import (
	"math"
	"math/rand"
	"testing"

	"llama4d/internal/comm"
	"llama4d/internal/data"
	"llama4d/internal/model"
	"llama4d/internal/pp"
	"llama4d/internal/tensor"
)

// buildPipeline constructs pp executors sharing a world, splitting a fresh
// model initialised from seed across ranks.
func buildPipeline(cfg model.Config, sched *pp.Schedule, seed int64, counts []int) (*comm.World, []*pp.Executor, []*model.Model) {
	w := comm.NewWorld(sched.PP)
	ranks := make([]int, sched.PP)
	for i := range ranks {
		ranks[i] = i
	}
	g := w.NewGroup(ranks)
	execs := make([]*pp.Executor, sched.PP)
	models := make([]*model.Model, sched.PP)
	for r := 0; r < sched.PP; r++ {
		m := model.New(cfg, rand.New(rand.NewSource(seed)))
		models[r] = m
		execs[r] = &pp.Executor{
			World: w, Group: g, Rank: r, Sched: sched,
			Stages: pp.SplitModel(m, sched, r, counts),
		}
	}
	return w, execs, models
}

// runPPStep executes one pipeline step over samples (one sample per
// micro-batch) and returns the last-rank loss mean.
func runPPStep(execs []*pp.Executor, sched *pp.Schedule, samples []*model.Sample) float64 {
	mbs := make([]*pp.Microbatch, len(samples))
	for i, s := range samples {
		mbs[i] = &pp.Microbatch{
			Samples: []*model.Sample{s},
			Envs:    []*model.Env{data.Env(s)},
			Scale:   1 / float32(len(samples)),
		}
	}
	losses := make([]float64, sched.PP)
	counts := make([]int, sched.PP)
	comm.RunSPMD(sched.PP, func(rank int) {
		losses[rank], counts[rank] = execs[rank].RunStep(mbs)
	})
	var loss float64
	n := 0
	for r := range losses {
		loss += losses[r]
		n += counts[r]
	}
	return loss / float64(n)
}

func stageGradsByName(execs []*pp.Executor) map[string]*tensor.Tensor {
	grads := make(map[string]*tensor.Tensor)
	for _, e := range execs {
		for _, st := range e.Stages {
			for _, p := range st.Params() {
				grads[p.Name] = p.G
			}
		}
	}
	return grads
}

func TestExecutorMatchesSequentialBitwise(t *testing.T) {
	// The §6.2 claim made executable: PP micro-batching with FP32 gradient
	// accumulation reproduces the sequential reference BITWISE, because the
	// micro-batch accumulation order matches the sequential sample order.
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	gen := &data.Generator{Vocab: cfg.Vocab, Seq: 16, AvgDocLen: 6, Seed: 21}

	for _, tc := range []struct {
		name  string
		sched *pp.Schedule
	}{
		{"1f1b", pp.NewInterleaved1F1B(2, 2, 4)},
		{"allFallB", pp.NewAllFwdAllBwd(2, 2, 4)},
		{"flexible nc>pp", pp.NewFlexible(2, 2, 4, 3)},
		{"flexible ragged nmb", pp.NewFlexible(2, 2, 5, 3)}, // nmb not multiple of pp
	} {
		nmb := tc.sched.NMB
		samples := gen.GlobalBatch(0, nmb)

		ref := model.New(cfg, rand.New(rand.NewSource(77)))
		ref.ZeroGrads()
		var refLoss float64
		for _, s := range samples {
			l, ctx := ref.ForwardLoss(s.Tokens, s.Targets, data.Env(s), 1/float32(nmb))
			ref.Backward(ctx)
			refLoss += l / float64(nmb)
		}

		counts := pp.StageLayerCounts(cfg.NLayers, tc.sched.Stages(), false)
		_, execs, _ := buildPipeline(cfg, tc.sched, 77, counts)
		loss := runPPStep(execs, tc.sched, samples)

		if math.Abs(loss-refLoss) > 1e-12 {
			t.Fatalf("%s: PP loss %v != sequential %v", tc.name, loss, refLoss)
		}
		grads := stageGradsByName(execs)
		for _, p := range ref.Params() {
			g, ok := grads[p.Name]
			if !ok {
				t.Fatalf("%s: no stage owns %s", tc.name, p.Name)
			}
			if !tensor.BitwiseEqual(g, p.G) {
				t.Fatalf("%s: gradient of %s not bitwise equal (maxdiff %v)",
					tc.name, p.Name, tensor.MaxDiff(g, p.G))
			}
		}
	}
}

func TestExecutorPeakMatchesScheduleAnalysis(t *testing.T) {
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	gen := &data.Generator{Vocab: cfg.Vocab, Seq: 16, AvgDocLen: 6, Seed: 22}
	sched := pp.NewAllFwdAllBwd(2, 2, 4)
	counts := pp.StageLayerCounts(cfg.NLayers, sched.Stages(), false)
	_, execs, _ := buildPipeline(cfg, sched, 5, counts)
	runPPStep(execs, sched, gen.GlobalBatch(0, sched.NMB))
	peaks := sched.PeakInFlight()
	for r, e := range execs {
		if e.PeakLiveContexts != peaks[r] {
			t.Fatalf("rank %d measured peak %d != analytic %d", r, e.PeakLiveContexts, peaks[r])
		}
	}
}

func TestExecutorTrainingConverges(t *testing.T) {
	// Multiple PP steps with SGD reduce loss on a fixed batch.
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	gen := &data.Generator{Vocab: cfg.Vocab, Seq: 16, AvgDocLen: 6, Seed: 23}
	sched := pp.NewInterleaved1F1B(2, 2, 4)
	counts := pp.StageLayerCounts(cfg.NLayers, sched.Stages(), false)
	_, execs, _ := buildPipeline(cfg, sched, 6, counts)
	samples := gen.GlobalBatch(0, sched.NMB)
	var first, last float64
	for step := 0; step < 25; step++ {
		for _, e := range execs {
			for _, st := range e.Stages {
				model.ZeroGrads(st.Params())
			}
		}
		loss := runPPStep(execs, sched, samples)
		for _, e := range execs {
			for _, st := range e.Stages {
				for _, p := range st.Params() {
					p.W.AxpyFrom(-0.3, p.G)
				}
			}
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last > first*0.8 {
		t.Fatalf("PP training did not reduce loss: %v -> %v", first, last)
	}
}

func TestSplitModelCoversAllParams(t *testing.T) {
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	sched := pp.NewInterleaved1F1B(2, 2, 4)
	counts := pp.StageLayerCounts(cfg.NLayers, sched.Stages(), false)
	owned := make(map[string]int)
	for r := 0; r < sched.PP; r++ {
		m := model.New(cfg, rand.New(rand.NewSource(1)))
		for _, st := range pp.SplitModel(m, sched, r, counts) {
			for _, p := range st.Params() {
				owned[p.Name]++
			}
		}
	}
	full := model.New(cfg, rand.New(rand.NewSource(1)))
	for _, p := range full.Params() {
		if owned[p.Name] != 1 {
			t.Fatalf("param %s owned %d times", p.Name, owned[p.Name])
		}
	}
}

func BenchmarkExecutorStep(b *testing.B) {
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	gen := &data.Generator{Vocab: cfg.Vocab, Seq: 16, AvgDocLen: 6, Seed: 1}
	sched := pp.NewInterleaved1F1B(2, 2, 4)
	counts := pp.StageLayerCounts(cfg.NLayers, sched.Stages(), false)
	_, execs, _ := buildPipeline(cfg, sched, 1, counts)
	samples := gen.GlobalBatch(0, sched.NMB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runPPStep(execs, sched, samples)
	}
}

func TestRunForwardEvaluationPass(t *testing.T) {
	// The forward-only pass must reproduce RunStep's loss exactly while
	// touching no gradients and retaining no contexts.
	cfg := model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2, NLayers: 4, MaxSeq: 16, RopeBase: 10000}
	gen := &data.Generator{Vocab: cfg.Vocab, Seq: 16, AvgDocLen: 6, Seed: 91}
	sched := pp.NewInterleaved1F1B(2, 2, 4)
	counts := pp.StageLayerCounts(cfg.NLayers, sched.Stages(), false)
	_, execs, _ := buildPipeline(cfg, sched, 92, counts)
	samples := gen.GlobalBatch(0, sched.NMB)
	mbs := make([]*pp.Microbatch, len(samples))
	for i, s := range samples {
		mbs[i] = &pp.Microbatch{Samples: []*model.Sample{s}, Envs: []*model.Env{data.Env(s)}, Scale: 0.25}
	}

	trainLosses := make([]float64, sched.PP)
	comm.RunSPMD(sched.PP, func(rank int) {
		trainLosses[rank], _ = execs[rank].RunStep(mbs)
	})
	// Reset grads, then evaluate.
	var gradSumAfterReset float32
	for _, e := range execs {
		for _, st := range e.Stages {
			model.ZeroGrads(st.Params())
		}
	}
	evalLosses := make([]float64, sched.PP)
	comm.RunSPMD(sched.PP, func(rank int) {
		evalLosses[rank], _ = execs[rank].RunForward(mbs)
	})
	if evalLosses[0]+evalLosses[1] != trainLosses[0]+trainLosses[1] {
		t.Fatalf("eval loss %v != train loss %v", evalLosses, trainLosses)
	}
	for _, e := range execs {
		for _, st := range e.Stages {
			for _, p := range st.Params() {
				gradSumAfterReset += p.G.MaxAbs()
			}
		}
	}
	if gradSumAfterReset != 0 {
		t.Fatal("forward-only pass must not touch gradients")
	}
}
