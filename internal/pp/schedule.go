// Package pp implements the paper's pipeline parallelism (§3): schedules are
// pure data — per-rank lists of forward/backward operations over virtual
// stages and micro-batches — produced by generators for the interleaved 1F1B
// schedule, the all-forward-all-backward schedule, and the paper's flexible
// schedule that removes the batch-size constraint (§3.1.1). The same
// schedule objects feed a dependency validator, analytic models (bubble
// ratio, in-flight activation memory), the functional executor over real
// tensors, and the discrete-event performance simulator.
//
// Stage placement is interleaved (Fig 2): global stage g lives on rank
// g % pp as that rank's virtual stage g / pp.
package pp

import "fmt"

// OpKind distinguishes forward from backward micro-batch executions.
type OpKind int

// Operation kinds.
const (
	Fwd OpKind = iota
	Bwd
)

func (k OpKind) String() string {
	if k == Fwd {
		return "F"
	}
	return "B"
}

// Op is one unit of pipeline work: run the forward or backward of one
// micro-batch through one local virtual stage.
type Op struct {
	Kind  OpKind
	Stage int // virtual stage index local to the rank (0..v-1)
	MB    int // micro-batch index (0..nmb-1)
}

// Schedule is a complete pipeline schedule.
type Schedule struct {
	Name string
	PP   int // pipeline size (ranks)
	V    int // virtual stages per rank
	NMB  int // micro-batches per virtual stage
	NC   int // consecutive micro-batches per virtual stage per round

	Ranks [][]Op // Ranks[r] is rank r's op list in issue order
}

// Stages returns the total number of global pipeline stages.
func (s *Schedule) Stages() int { return s.PP * s.V }

// GlobalStage maps (rank, local virtual stage) to the global stage index
// under interleaved placement.
func (s *Schedule) GlobalStage(rank, vstage int) int { return vstage*s.PP + rank }

// StageOwner maps a global stage index to (rank, local virtual stage).
func (s *Schedule) StageOwner(g int) (rank, vstage int) { return g % s.PP, g / s.PP }

// TMB returns the total micro-batch executions per rank (per direction).
func (s *Schedule) TMB() int { return s.NMB * s.V }

// Warmup returns the number of warm-up forward micro-batches on rank ppr —
// the generalised formula of §3.1.1. With nc == pp it reduces to the
// Megatron interleaved-1F1B warm-up; with nc > pp it inserts nc−pp extra
// micro-batches per virtual stage into the warm-up (hiding exposed P2P,
// Fig 3, at the cost of (nc−pp)·(v−1) more in-flight micro-batches); with
// nc < pp the schedule degenerates to all-forward-all-backward (Fig 4b).
func Warmup(pp, v, nmb, nc, ppr int) int {
	tmb := nmb * v
	if nc < pp {
		return tmb // all-forward-all-backward
	}
	var w int
	if v == 1 {
		w = pp - ppr - 1
	} else {
		w = (v-1)*nc + 2*(pp-ppr-1)
	}
	if w > tmb {
		w = tmb
	}
	return w
}

// fwdOrder returns the forward issue order for one rank: rounds of up to nc
// consecutive micro-batches per virtual stage, stages in ascending order
// (Fig 2's enumeration). Handles ragged final rounds (nmb % nc != 0), which
// is what frees the schedule from the "batch size multiple of pp" constraint.
func fwdOrder(v, nmb, nc int) []Op {
	ops := make([]Op, 0, v*nmb)
	for base := 0; base < nmb; base += nc {
		cnt := nc
		if base+cnt > nmb {
			cnt = nmb - base
		}
		for st := 0; st < v; st++ {
			for i := 0; i < cnt; i++ {
				ops = append(ops, Op{Kind: Fwd, Stage: st, MB: base + i})
			}
		}
	}
	return ops
}

// bwdOrder returns the backward issue order: same rounds, but virtual stages
// in descending order (backward flows from the last stage).
func bwdOrder(v, nmb, nc int) []Op {
	ops := make([]Op, 0, v*nmb)
	for base := 0; base < nmb; base += nc {
		cnt := nc
		if base+cnt > nmb {
			cnt = nmb - base
		}
		for st := v - 1; st >= 0; st-- {
			for i := 0; i < cnt; i++ {
				ops = append(ops, Op{Kind: Bwd, Stage: st, MB: base + i})
			}
		}
	}
	return ops
}

// rankOps assembles a rank's 1F1B op list: W warm-up forwards, a steady
// phase interleaving one forward with one backward, and a cool-down of the
// remaining backwards. When nmb is not a multiple of nc (a ragged final
// round — the case the original interleaved 1F1B cannot express), the full
// rounds run through the 1F1B zipper and the remainder micro-batches run as
// a trailing all-forward-all-backward phase; naively zipping the ragged
// round can deadlock across ranks.
func rankOps(pp, v, nmb, nc, ppr int) []Op {
	tmb := nmb * v
	if nc < pp {
		// Degenerate all-forward-all-backward (§3.1.1): warm-up covers
		// everything, backwards follow in round order.
		ops := make([]Op, 0, 2*tmb)
		ops = append(ops, fwdOrder(v, nmb, nc)...)
		ops = append(ops, bwdOrder(v, nmb, nc)...)
		return ops
	}

	full := nmb / nc * nc
	ops := make([]Op, 0, 2*tmb)
	if full > 0 {
		fs := fwdOrder(v, full, nc)
		bs := bwdOrder(v, full, nc)
		tmbMain := full * v
		w := Warmup(pp, v, full, nc, ppr)
		ops = append(ops, fs[:w]...)
		for i := 0; i < tmbMain-w; i++ {
			// Steady state: one forward then one backward (1F1B).
			ops = append(ops, fs[w+i], bs[i])
		}
		ops = append(ops, bs[tmbMain-w:]...)
	}
	if rem := nmb - full; rem > 0 {
		for st := 0; st < v; st++ {
			for mb := full; mb < nmb; mb++ {
				ops = append(ops, Op{Kind: Fwd, Stage: st, MB: mb})
			}
		}
		for wave := 0; wave < rem+v-1; wave++ {
			for st := v - 1; st >= 0; st-- {
				mb := full + wave - (v - 1 - st)
				if mb >= full && mb < nmb {
					ops = append(ops, Op{Kind: Bwd, Stage: st, MB: mb})
				}
			}
		}
	}
	return ops
}

// NewFlexible builds the paper's flexible schedule (§3.1.1) with arbitrary
// nc ∈ [1, nmb] and arbitrary nmb.
func NewFlexible(pp, v, nmb, nc int) *Schedule {
	if pp <= 0 || v <= 0 || nmb <= 0 {
		panic(fmt.Sprintf("pp: invalid schedule dims pp=%d v=%d nmb=%d", pp, v, nmb))
	}
	if nc < 1 {
		nc = 1
	}
	if nc > nmb {
		nc = nmb
	}
	s := &Schedule{Name: fmt.Sprintf("flexible(nc=%d)", nc), PP: pp, V: v, NMB: nmb, NC: nc}
	for r := 0; r < pp; r++ {
		s.Ranks = append(s.Ranks, rankOps(pp, v, nmb, nc, r))
	}
	return s
}

// NewInterleaved1F1B builds the original interleaved 1F1B schedule [25],
// which requires nmb to be a multiple of pp (nc == pp).
func NewInterleaved1F1B(pp, v, nmb int) *Schedule {
	if pp <= 0 || v <= 0 || nmb <= 0 {
		panic(fmt.Sprintf("pp: invalid schedule dims pp=%d v=%d nmb=%d", pp, v, nmb))
	}
	if nmb%pp != 0 {
		panic(fmt.Sprintf("pp: interleaved 1F1B requires nmb (%d) %% pp (%d) == 0; use NewFlexible", nmb, pp))
	}
	s := NewFlexible(pp, v, nmb, pp)
	s.Name = "1f1b"
	return s
}

// NewAllFwdAllBwd builds the all-forward-all-backward (GPipe-style [11])
// schedule: every forward before any backward. Backwards run in dependency
// wave order — micro-batch mb of local stage st executes in wave
// mb + (v−1−st) — which keeps the pipeline full while every stage's
// gradient buffer stays live until its final micro-batch near the end of
// the step. That shared lifetime is why ZeRO-1 and ZeRO-2 behave
// identically under this schedule (Fig 4b).
func NewAllFwdAllBwd(pp, v, nmb int) *Schedule {
	if pp <= 0 || v <= 0 || nmb <= 0 {
		panic(fmt.Sprintf("pp: invalid schedule dims pp=%d v=%d nmb=%d", pp, v, nmb))
	}
	s := &Schedule{Name: "allFallB", PP: pp, V: v, NMB: nmb, NC: nmb}
	for r := 0; r < pp; r++ {
		ops := append([]Op(nil), fwdOrder(v, nmb, nmb)...)
		for wave := 0; wave < nmb+v-1; wave++ {
			for st := v - 1; st >= 0; st-- {
				mb := wave - (v - 1 - st)
				if mb >= 0 && mb < nmb {
					ops = append(ops, Op{Kind: Bwd, Stage: st, MB: mb})
				}
			}
		}
		s.Ranks = append(s.Ranks, ops)
	}
	return s
}

// Validate checks structural invariants: every (stage, mb) appears exactly
// once per direction on its owning rank, and each backward follows its
// forward in the rank's local order.
func (s *Schedule) Validate() error {
	for r, ops := range s.Ranks {
		type key struct {
			k  OpKind
			st int
			mb int
		}
		seen := make(map[key]int)
		for i, op := range ops {
			if op.Stage < 0 || op.Stage >= s.V || op.MB < 0 || op.MB >= s.NMB {
				return fmt.Errorf("pp: rank %d op %d out of range: %+v", r, i, op)
			}
			k := key{op.Kind, op.Stage, op.MB}
			if _, dup := seen[k]; dup {
				return fmt.Errorf("pp: rank %d duplicates op %+v", r, op)
			}
			seen[k] = i
		}
		if len(seen) != 2*s.TMB() {
			return fmt.Errorf("pp: rank %d has %d ops, want %d", r, len(seen), 2*s.TMB())
		}
		for st := 0; st < s.V; st++ {
			for mb := 0; mb < s.NMB; mb++ {
				if seen[key{Bwd, st, mb}] < seen[key{Fwd, st, mb}] {
					return fmt.Errorf("pp: rank %d runs B(%d,%d) before F(%d,%d)", r, st, mb, st, mb)
				}
			}
		}
	}
	return nil
}
