package pp

import (
	"fmt"
	"math"

	"llama4d/internal/trace"
)

// Costs parameterises the analytic timing model of a schedule. Durations are
// in arbitrary time units; per-stage functions allow heterogeneous stages
// (embedding-heavy first rank, head-heavy last rank — the imbalance of
// §3.1.2, and cross- vs self-attention stages of §3.2.2).
type Costs struct {
	Fwd func(globalStage int) float64 // forward compute time of one micro-batch
	Bwd func(globalStage int) float64 // backward compute time
	P2P float64                       // exposed point-to-point latency between ranks

	// FwdMB/BwdMB, when non-nil, override Fwd/Bwd with per-micro-batch costs:
	// document-masked workloads make micro-batches heterogeneous (ragged
	// effective-FLOP loads), and the balance planner simulates candidate
	// micro-batch orderings through exactly this hook.
	FwdMB func(globalStage, mb int) float64
	BwdMB func(globalStage, mb int) float64
}

// UniformCosts returns a cost model with identical stages and backward =
// 2× forward (the standard FLOP ratio).
func UniformCosts(fwd, p2p float64) Costs {
	return Costs{
		Fwd: func(int) float64 { return fwd },
		Bwd: func(int) float64 { return 2 * fwd },
		P2P: p2p,
	}
}

// Interval is one executed op on the simulated timeline.
type Interval struct {
	Rank       int
	Op         Op
	Start, End float64
}

// Timeline is the result of simulating a schedule.
type Timeline struct {
	Schedule  *Schedule
	Intervals []Interval
	Makespan  float64
	Busy      []float64 // per-rank compute time
}

// Simulate executes the schedule under the cost model with in-order issue
// per rank (each rank blocks on its next op's dependencies) and decoupled
// asynchronous P2P (§5.2): a send never blocks the sender; the receiver pays
// Costs.P2P after the producer finishes. Returns an error on deadlock.
func (s *Schedule) Simulate(c Costs) (*Timeline, error) {
	type key struct {
		kind OpKind
		g    int // global stage
		mb   int
	}
	finish := make(map[key]float64)
	ptr := make([]int, s.PP)
	rankFree := make([]float64, s.PP)
	tl := &Timeline{Schedule: s, Busy: make([]float64, s.PP)}
	lastStage := s.Stages() - 1

	remaining := 0
	for _, ops := range s.Ranks {
		remaining += len(ops)
	}
	for remaining > 0 {
		progressed := false
		for r := 0; r < s.PP; r++ {
			for ptr[r] < len(s.Ranks[r]) {
				op := s.Ranks[r][ptr[r]]
				g := s.GlobalStage(r, op.Stage)
				// Dependency ready time (−1 when not yet satisfiable).
				ready := 0.0
				ok := true
				need := func(k key, xfer bool) {
					t, done := finish[k]
					if !done {
						ok = false
						return
					}
					if xfer {
						t += c.P2P
					}
					if t > ready {
						ready = t
					}
				}
				switch op.Kind {
				case Fwd:
					if g > 0 {
						prevRank, _ := s.StageOwner(g - 1)
						need(key{Fwd, g - 1, op.MB}, prevRank != r)
					}
				case Bwd:
					need(key{Fwd, g, op.MB}, false)
					if g < lastStage {
						nextRank, _ := s.StageOwner(g + 1)
						need(key{Bwd, g + 1, op.MB}, nextRank != r)
					}
				}
				if !ok {
					break // rank blocks in-order on this op
				}
				start := math.Max(rankFree[r], ready)
				var dur float64
				switch {
				case op.Kind == Bwd && c.BwdMB != nil:
					dur = c.BwdMB(g, op.MB)
				case op.Kind == Bwd:
					dur = c.Bwd(g)
				case c.FwdMB != nil:
					dur = c.FwdMB(g, op.MB)
				default:
					dur = c.Fwd(g)
				}
				end := start + dur
				finish[key{op.Kind, g, op.MB}] = end
				rankFree[r] = end
				tl.Busy[r] += dur
				tl.Intervals = append(tl.Intervals, Interval{Rank: r, Op: op, Start: start, End: end})
				if end > tl.Makespan {
					tl.Makespan = end
				}
				ptr[r]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			detail := ""
			for r := 0; r < s.PP; r++ {
				if ptr[r] < len(s.Ranks[r]) {
					op := s.Ranks[r][ptr[r]]
					detail += fmt.Sprintf(" rank%d@%s(s%d,mb%d)", r, op.Kind, op.Stage, op.MB)
				}
			}
			return nil, fmt.Errorf("pp: schedule deadlocked with %d ops remaining:%s", remaining, detail)
		}
	}
	return tl, nil
}

// BubbleRatio returns pipeline idle time over compute time, averaged across
// ranks — the paper's PP bubble metric ((pp−1)/nmb/v for the classic
// schedule, §3.1.1).
func (t *Timeline) BubbleRatio() float64 {
	var idle, busy float64
	for _, b := range t.Busy {
		idle += t.Makespan - b
		busy += b
	}
	if busy == 0 {
		return 0
	}
	return idle / busy
}

// Throughput returns total compute time over (makespan × ranks): the
// utilisation fraction, 1/(1+bubble).
func (t *Timeline) Throughput() float64 {
	var busy float64
	for _, b := range t.Busy {
		busy += b
	}
	return busy / (t.Makespan * float64(len(t.Busy)))
}

// PeakInFlight returns, per rank, the maximum number of micro-batches whose
// forward has run but whose backward has not — the activation-memory proxy
// that grows by (nc−pp)·(v−1) when nc > pp (§3.1.1) and is maximal for
// all-forward-all-backward (Fig 4b, Fig 9b).
func (s *Schedule) PeakInFlight() []int {
	peaks := make([]int, s.PP)
	for r, ops := range s.Ranks {
		cur, peak := 0, 0
		for _, op := range ops {
			if op.Kind == Fwd {
				cur++
				if cur > peak {
					peak = cur
				}
			} else {
				cur--
			}
		}
		peaks[r] = peak
	}
	return peaks
}

// MaxPeakInFlight returns the largest per-rank peak.
func (s *Schedule) MaxPeakInFlight() int {
	m := 0
	for _, p := range s.PeakInFlight() {
		if p > m {
			m = p
		}
	}
	return m
}

// ToTrace converts the simulated timeline into a trace.Trace for the
// debugging tooling: ASCII strips, Chrome JSON export, per-rank accounting.
func (t *Timeline) ToTrace() *trace.Trace {
	tr := &trace.Trace{}
	for _, iv := range t.Intervals {
		tr.Add(trace.Event{
			Rank: iv.Rank, Kind: trace.Compute, Group: "pp",
			Name:  fmt.Sprintf("%s(s%d,mb%d)", iv.Op.Kind, iv.Op.Stage, iv.Op.MB),
			Start: iv.Start, Dur: iv.End - iv.Start,
		})
	}
	return tr
}

// Render draws the schedule as a Fig 2-style grid: one row per rank, one
// column per simulated time slot, each cell the micro-batch index (forward)
// or a bracketed index (backward), with '.' for idle slots. Uses unit
// forward cost and 2× backward cost.
func (s *Schedule) Render() (string, error) {
	tl, err := s.Simulate(UniformCosts(1, 0))
	if err != nil {
		return "", err
	}
	width := int(tl.Makespan)
	rows := make([][]string, s.PP)
	for r := range rows {
		rows[r] = make([]string, width)
		for c := range rows[r] {
			rows[r][c] = " . "
		}
	}
	for _, iv := range tl.Intervals {
		cell := fmt.Sprintf("%2dF", iv.Op.MB)
		if iv.Op.Kind == Bwd {
			cell = fmt.Sprintf("%2dB", iv.Op.MB)
		}
		for c := int(iv.Start); c < int(iv.End) && c < width; c++ {
			rows[iv.Rank][c] = cell
		}
	}
	out := ""
	for r, row := range rows {
		out += fmt.Sprintf("rank %d |", r)
		for _, cell := range row {
			out += cell
		}
		out += "|\n"
	}
	return out, nil
}

// ExposedP2PTime estimates the total time ranks spend stalled on
// dependencies (waiting for P2P or upstream compute): makespan − busy,
// summed — the "bubble due to P2P" of Fig 3.
func (t *Timeline) ExposedP2PTime() float64 {
	var idle float64
	for _, b := range t.Busy {
		idle += t.Makespan - b
	}
	return idle
}
