package pp

import (
	"fmt"
	"time"

	"llama4d/internal/comm"
	"llama4d/internal/model"
	"llama4d/internal/tensor"
)

// Observer watches one rank's schedule execution op by op — the measured
// counterpart of the analytic Timeline. After every executed op it receives
// the op, its wall time (split into the P2P wait portion and the rest), and
// the live activation footprint: deduplicated bytes of every activation
// tensor retained by the rank's in-flight micro-batch contexts, plus the
// context count (the measured Schedule.PeakInFlight input). Implementations
// must be safe for concurrent use by all ranks.
type Observer interface {
	OpExecuted(rank int, op Op, dur, p2pWait float64, liveBytes int64, liveContexts int)
}

// ParamGatherer coordinates sharded-parameter residency with stage compute:
// the executor calls Ensure* immediately before a fragment's first use in an
// op, letting FSDP ZeRO-3 wait that fragment's in-flight all-gather and
// issue the next prefetch — the "gather layer i+1 while layer i computes"
// overlap of §7.3.1. The executor makes these calls in schedule order, which
// is identical on every rank of a data-parallel group, so the nonblocking
// collective sequences stay aligned. Nil disables the hooks.
type ParamGatherer interface {
	EnsureEmbed(vstage int)
	EnsureLayer(vstage, layer int)
	EnsureHead(vstage int)
}

// Stage holds the model fragment of one virtual pipeline stage. Embed is
// non-nil only on global stage 0, Head only on the last global stage — the
// placement whose memory/compute skew motivates the paper's balanced-PP
// co-design (§3.1.2).
type Stage struct {
	Embed  model.TokenEmbedder
	Layers []model.Layer
	Head   model.LossHead
}

// Params returns all parameters owned by the stage.
func (s *Stage) Params() []*model.Param {
	var ps []*model.Param
	if s.Embed != nil {
		ps = append(ps, s.Embed.Params()...)
	}
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	if s.Head != nil {
		ps = append(ps, s.Head.Params()...)
	}
	return ps
}

// Microbatch is the unit of pipeline execution: a list of samples with their
// attention environments and per-sample gradient scale. Scale applies to all
// samples; Scales, if non-nil, overrides it per sample (context parallelism
// needs per-sample token-count weighting).
type Microbatch struct {
	Samples []*model.Sample
	Envs    []*model.Env
	Scale   float32
	Scales  []float32
	// Weights, if non-nil, weight each sample's head loss in the returned
	// loss sum (context parallelism weights by local/total token counts so
	// that summing across CP ranks yields the full-sample token mean).
	Weights []float64
	// Tags, if non-nil, give each sample a caller-chosen stable identity
	// (e.g. its corpus index) reported through Executor.OnLoss — how the
	// balance benchmarks compare per-sample losses across placements that
	// assign samples to different ranks and micro-batches.
	Tags []int64
}

func (m *Microbatch) scale(i int) float32 {
	if m.Scales != nil {
		return m.Scales[i]
	}
	return m.Scale
}

// Executor runs a schedule's ops for one rank over real tensors, exchanging
// activations and gradients through decoupled asynchronous P2P.
type Executor struct {
	World  *comm.World
	Group  *comm.Group // pipeline group; local rank order = pipeline order
	Rank   int         // global rank
	Sched  *Schedule
	Stages []*Stage // local virtual stages

	// PeakLiveContexts records, after RunStep, the maximum number of
	// micro-batch forward contexts simultaneously held — the measured
	// counterpart of Schedule.PeakInFlight.
	PeakLiveContexts int

	// OnBackward, if set, runs after every backward op (stage, mb). FSDP
	// ZeRO-2 hooks its per-micro-batch gradient reduce-scatter here (Fig 4c);
	// the hook must perform the same collectives on every rank of the data
	// parallel group, which holds because those ranks share one schedule.
	OnBackward func(vstage, mb int)

	// Obs, if set, observes every executed op with timing and the live
	// activation footprint (internal/metrics). Set it before RunStep.
	Obs Observer

	// OnLoss, if set, receives each tagged sample's unweighted head loss as
	// it is computed (last-stage ranks only, and only for micro-batches whose
	// Tags field is populated). Called from this rank's goroutine.
	OnLoss func(tag int64, loss float64)

	// Gather, if set, is called before each model fragment's compute so a
	// ZeRO-3 shard can overlap parameter all-gathers with execution.
	Gather ParamGatherer

	// RecvAhead, when positive, pre-posts each activation/gradient receive
	// up to RecvAhead schedule ops before the op that consumes it, so the
	// transfer overlaps the intervening compute. 0 keeps the synchronous
	// blocking-Recv path.
	RecvAhead int

	// AsyncSend, when true, issues activation/gradient sends as
	// nonblocking handles, drained at the end of the step. Payloads are
	// cloned at issue, so compute may immediately reuse the buffers.
	AsyncSend bool
}

const ppTagBase = 1 << 21

func fwdTag(stages, g, mb int) int { return ppTagBase + 2*(mb*stages+g) }
func bwdTag(stages, g, mb int) int { return ppTagBase + 2*(mb*stages+g) + 1 }

// mbState holds the in-flight state of one micro-batch on one stage.
type mbState struct {
	inputs   []*tensor.Tensor // per-sample stage inputs (for re-chunking dx)
	layerCtx [][]any          // [sample][layer]
	headCtx  []any
	embCtx   []any
	mb       *Microbatch
}

// RunStep executes the rank's schedule over the given micro-batches and
// returns the summed loss of samples whose head ran on this rank (non-zero
// only on the last pipeline rank) and the number of such samples.
func (e *Executor) RunStep(mbs []*Microbatch) (lossSum float64, nSamples int) {
	if len(mbs) != e.Sched.NMB {
		panic(fmt.Sprintf("pp: %d micro-batches for schedule with nmb=%d", len(mbs), e.Sched.NMB))
	}
	lr := e.Group.LocalRank(e.Rank)
	stages := e.Sched.Stages()
	ops := e.Sched.Ranks[lr]
	live := make(map[[2]int]*mbState) // (vstage, mb) -> state
	e.PeakLiveContexts = 0

	// Pre-posting plan: every receive the schedule will perform, in op
	// order, so IRecvs can be issued up to RecvAhead ops before the
	// consuming op. Tags are unique per (stage, mb, direction), so an early
	// post can never capture another op's message.
	type recvSrc struct {
		idx  int // index of the op that consumes the receive
		from int // global sender rank
		tag  int
	}
	var plan []recvSrc
	if e.RecvAhead > 0 {
		for i, op := range ops {
			g := e.Sched.GlobalStage(lr, op.Stage)
			switch {
			case op.Kind == Fwd && g > 0:
				pr, _ := e.Sched.StageOwner(g - 1)
				plan = append(plan, recvSrc{i, e.Group.GlobalRank(pr), fwdTag(stages, g, op.MB)})
			case op.Kind == Bwd && g < stages-1:
				nr, _ := e.Sched.StageOwner(g + 1)
				plan = append(plan, recvSrc{i, e.Group.GlobalRank(nr), bwdTag(stages, g, op.MB)})
			}
		}
	}
	posted := make(map[int]*comm.Handle) // consuming op index -> handle
	np := 0
	var sendHs []*comm.Handle
	recvPacked := func(idx int, from, tag int) *tensor.Tensor {
		if h, ok := posted[idx]; ok {
			delete(posted, idx)
			return h.Wait()
		}
		return e.World.Recv(e.Rank, from, tag)
	}
	send := func(to, tag int, t *tensor.Tensor) {
		if e.AsyncSend {
			sendHs = append(sendHs, e.World.ISend(e.Rank, to, tag, t))
			return
		}
		e.World.Send(e.Rank, to, tag, t)
	}

	for idx, op := range ops {
		for np < len(plan) && plan[np].idx <= idx+e.RecvAhead {
			posted[plan[np].idx] = e.World.IRecv(e.Rank, plan[np].from, plan[np].tag)
			np++
		}
		opStart := time.Now()
		var p2pWait float64
		g := e.Sched.GlobalStage(lr, op.Stage)
		stage := e.Stages[op.Stage]
		mb := mbs[op.MB]
		keyID := [2]int{op.Stage, op.MB}
		switch op.Kind {
		case Fwd:
			st := &mbState{mb: mb}
			var xs []*tensor.Tensor
			if g == 0 {
				if e.Gather != nil {
					e.Gather.EnsureEmbed(op.Stage)
				}
				for i, s := range mb.Samples {
					x, ec := stage.Embed.Forward(s.Tokens)
					st.embCtx = append(st.embCtx, ec)
					xs = append(xs, x)
					_ = i
				}
			} else {
				prevRank, _ := e.Sched.StageOwner(g - 1)
				t0 := time.Now()
				packed := recvPacked(idx, e.Group.GlobalRank(prevRank), fwdTag(stages, g, op.MB))
				p2pWait += time.Since(t0).Seconds()
				xs = unpackRows(packed, len(mb.Samples))
			}
			st.inputs = xs
			outs := make([]*tensor.Tensor, len(xs))
			st.layerCtx = make([][]any, len(xs))
			for i, x := range xs {
				cur := x
				for li, l := range stage.Layers {
					if e.Gather != nil {
						e.Gather.EnsureLayer(op.Stage, li)
					}
					var c any
					cur, c = l.Forward(cur, mb.Envs[i])
					st.layerCtx[i] = append(st.layerCtx[i], c)
				}
				outs[i] = cur
			}
			if g == stages-1 {
				if e.Gather != nil {
					e.Gather.EnsureHead(op.Stage)
				}
				for i, out := range outs {
					loss, hc := stage.Head.ForwardLoss(out, mb.Samples[i].Targets, mb.scale(i), mb.Envs[i])
					st.headCtx = append(st.headCtx, hc)
					if e.OnLoss != nil && mb.Tags != nil {
						e.OnLoss(mb.Tags[i], loss)
					}
					w := 1.0
					if mb.Weights != nil {
						w = mb.Weights[i]
					}
					lossSum += loss * w
					nSamples++
				}
			} else {
				nextRank, _ := e.Sched.StageOwner(g + 1)
				send(e.Group.GlobalRank(nextRank), fwdTag(stages, g+1, op.MB), packRows(outs))
			}
			live[keyID] = st
			if len(live) > e.PeakLiveContexts {
				e.PeakLiveContexts = len(live)
			}

		case Bwd:
			st, ok := live[keyID]
			if !ok {
				panic(fmt.Sprintf("pp: backward before forward for stage %d mb %d", op.Stage, op.MB))
			}
			var dys []*tensor.Tensor
			if g == stages-1 {
				for _, hc := range st.headCtx {
					dys = append(dys, e.Stages[op.Stage].Head.BackwardLoss(hc))
				}
			} else {
				nextRank, _ := e.Sched.StageOwner(g + 1)
				t0 := time.Now()
				packed := recvPacked(idx, e.Group.GlobalRank(nextRank), bwdTag(stages, g, op.MB))
				p2pWait += time.Since(t0).Seconds()
				dys = unpackRows(packed, len(mb.Samples))
			}
			dxs := make([]*tensor.Tensor, len(dys))
			for i, dy := range dys {
				cur := dy
				for li := len(stage.Layers) - 1; li >= 0; li-- {
					cur = stage.Layers[li].Backward(st.layerCtx[i][li], cur)
				}
				dxs[i] = cur
			}
			if g == 0 {
				for i, dx := range dxs {
					stage.Embed.Backward(st.embCtx[i], dx)
				}
			} else {
				prevRank, _ := e.Sched.StageOwner(g - 1)
				send(e.Group.GlobalRank(prevRank), bwdTag(stages, g-1, op.MB), packRows(dxs))
			}
			delete(live, keyID) // release activation memory (§6.3)
			if e.OnBackward != nil {
				e.OnBackward(op.Stage, op.MB)
			}
		}
		if e.Obs != nil {
			e.Obs.OpExecuted(e.Rank, op, time.Since(opStart).Seconds(), p2pWait,
				liveActivationBytes(live), len(live))
		}
	}
	// Drain async sends: every message is already cloned and accounted at
	// issue; waiting records the overlapped portion of the transfer time.
	for _, h := range sendHs {
		h.Wait()
	}
	if len(live) != 0 {
		panic(fmt.Sprintf("pp: %d micro-batch contexts leaked after step", len(live)))
	}
	return lossSum, nSamples
}

// RunForward executes only the forward half of the schedule — an evaluation
// pass: activations flow through the pipeline, losses accumulate on the last
// stage, and no context is retained (no gradients, no activation memory).
func (e *Executor) RunForward(mbs []*Microbatch) (lossSum float64, nSamples int) {
	if len(mbs) != e.Sched.NMB {
		panic(fmt.Sprintf("pp: %d micro-batches for schedule with nmb=%d", len(mbs), e.Sched.NMB))
	}
	lr := e.Group.LocalRank(e.Rank)
	stages := e.Sched.Stages()
	for _, op := range e.Sched.Ranks[lr] {
		if op.Kind != Fwd {
			continue
		}
		g := e.Sched.GlobalStage(lr, op.Stage)
		stage := e.Stages[op.Stage]
		mb := mbs[op.MB]
		var xs []*tensor.Tensor
		if g == 0 {
			for _, s := range mb.Samples {
				x, _ := stage.Embed.Forward(s.Tokens)
				xs = append(xs, x)
			}
		} else {
			prevRank, _ := e.Sched.StageOwner(g - 1)
			packed := e.World.Recv(e.Rank, e.Group.GlobalRank(prevRank), fwdTag(stages, g, op.MB))
			xs = unpackRows(packed, len(mb.Samples))
		}
		outs := make([]*tensor.Tensor, len(xs))
		for i, x := range xs {
			cur := x
			for _, l := range stage.Layers {
				cur, _ = l.Forward(cur, mb.Envs[i])
			}
			outs[i] = cur
		}
		if g == stages-1 {
			for i, out := range outs {
				loss, _ := stage.Head.ForwardLoss(out, mb.Samples[i].Targets, mb.scale(i), mb.Envs[i])
				w := 1.0
				if mb.Weights != nil {
					w = mb.Weights[i]
				}
				lossSum += loss * w
				nSamples++
			}
		} else {
			nextRank, _ := e.Sched.StageOwner(g + 1)
			e.World.Send(e.Rank, e.Group.GlobalRank(nextRank), fwdTag(stages, g+1, op.MB), packRows(outs))
		}
	}
	return lossSum, nSamples
}

// liveActivationBytes measures the rank's current activation footprint: the
// bytes of every distinct activation tensor retained by in-flight
// micro-batch contexts (stage inputs, per-layer saved tensors, head
// contexts). Residual-stream aliasing — a block's output pointer doubles as
// the next block's saved input — is resolved by pointer deduplication, so
// the measurement counts each buffer once, exactly as a real allocator
// would.
func liveActivationBytes(live map[[2]int]*mbState) int64 {
	seen := make(map[*tensor.Tensor]struct{})
	var bytes int64
	visit := func(t *tensor.Tensor) {
		if _, ok := seen[t]; ok {
			return
		}
		seen[t] = struct{}{}
		bytes += int64(t.Len()) * 4
	}
	for _, st := range live {
		for _, x := range st.inputs {
			if x != nil {
				visit(x)
			}
		}
		for _, lcs := range st.layerCtx {
			for _, c := range lcs {
				model.VisitSavedCtx(c, visit)
			}
		}
		for _, hc := range st.headCtx {
			model.VisitSavedCtx(hc, visit)
		}
	}
	return bytes
}

// packRows concatenates equal-shaped per-sample tensors for one P2P message.
func packRows(xs []*tensor.Tensor) *tensor.Tensor {
	return tensor.ConcatRows(xs...)
}

// unpackRows splits a packed message back into n per-sample tensors.
func unpackRows(t *tensor.Tensor, n int) []*tensor.Tensor {
	parts := tensor.SplitRows(t, n)
	out := make([]*tensor.Tensor, n)
	for i, p := range parts {
		out[i] = p.Clone()
	}
	return out
}

// StageLayerCounts distributes nLayers across nStages stages. With balanced
// set, the first and last stage get one layer fewer than the (even) middle
// allocation, compensating for the embedding and output head — the paper's
// §3.1.2 co-design: 126 layers on 128 stages puts zero transformer layers
// on the embed and head stages, and 126 layers on 16 ranks (v=1) gives the
// 7/8×14/7 shape. Requires nStages >= 3 for balancing.
func StageLayerCounts(nLayers, nStages int, balanced bool) []int {
	counts := make([]int, nStages)
	if nStages == 1 {
		counts[0] = nLayers
		return counts
	}
	if balanced && nStages >= 3 {
		c0 := (nLayers+nStages-1)/nStages - 1
		if c0 < 0 {
			c0 = 0
		}
		counts[0], counts[nStages-1] = c0, c0
		mid := nLayers - 2*c0
		nMid := nStages - 2
		base := mid / nMid
		rem := mid % nMid
		for i := 1; i < nStages-1; i++ {
			counts[i] = base
			if i <= rem {
				counts[i]++
			}
		}
		return counts
	}
	base := nLayers / nStages
	rem := nLayers % nStages
	for i := range counts {
		counts[i] = base
	}
	for i := 1; rem > 0; i = i%(nStages-1) + 1 {
		counts[i]++
		rem--
	}
	return counts
}

// SplitModel carves a model instance into the local stages of one pipeline
// rank under interleaved placement with the given per-stage layer counts.
// The model's blocks are moved (by reference) into the stages; the caller
// must not also use the model directly.
func SplitModel(m *model.Model, sched *Schedule, localRank int, counts []int) []*Stage {
	nStages := sched.Stages()
	if len(counts) != nStages {
		panic(fmt.Sprintf("pp: %d stage counts for %d stages", len(counts), nStages))
	}
	total := 0
	starts := make([]int, nStages)
	for g, c := range counts {
		starts[g] = total
		total += c
	}
	if total != len(m.Blocks) {
		panic(fmt.Sprintf("pp: stage counts sum to %d, model has %d layers", total, len(m.Blocks)))
	}
	stages := make([]*Stage, sched.V)
	for vs := 0; vs < sched.V; vs++ {
		g := sched.GlobalStage(localRank, vs)
		st := &Stage{}
		for i := 0; i < counts[g]; i++ {
			st.Layers = append(st.Layers, m.Blocks[starts[g]+i])
		}
		if g == 0 {
			st.Embed = m.Embed
		}
		if g == nStages-1 {
			st.Head = m.Head
		}
		stages[vs] = st
	}
	return stages
}
