package pp_test

import (
	"fmt"

	"llama4d/internal/pp"
)

// The warm-up formula of §3.1.1 on the paper's Fig 2 example: 3 PP ranks,
// 2 virtual stages, rounds of 3 consecutive micro-batches.
func ExampleWarmup() {
	for ppr := 0; ppr < 3; ppr++ {
		fmt.Println(pp.Warmup(3, 2, 6, 3, ppr))
	}
	// Output:
	// 7
	// 5
	// 3
}

// The flexible schedule accepts micro-batch counts the original interleaved
// 1F1B rejects, and still validates and simulates deadlock-free.
func ExampleNewFlexible() {
	s := pp.NewFlexible(4, 2, 5, 3) // nmb=5 is not a multiple of pp=4
	fmt.Println("valid:", s.Validate() == nil)
	tl, err := s.Simulate(pp.UniformCosts(1, 0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("bubble: %.3f\n", tl.BubbleRatio())
	// Output:
	// valid: true
	// bubble: 0.600
}

// Peak in-flight micro-batches grow by (nc−pp)·(v−1) when warm-up is
// extended to hide P2P (§3.1.1).
func ExampleSchedule_PeakInFlight() {
	base := pp.NewFlexible(4, 3, 12, 4)
	extra := pp.NewFlexible(4, 3, 12, 6)
	fmt.Println(base.PeakInFlight()[0], extra.PeakInFlight()[0])
	// Output:
	// 15 19
}
