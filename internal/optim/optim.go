// Package optim implements the optimizers of the reproduction: AdamW with
// FP32 master states (the precision policy of the paper's §6.2) and plain
// SGD. Optimizers operate on flat float32 slices so FSDP can run them on
// sharded views of a flat parameter buffer (ZeRO-1's sharded optimizer
// states).
package optim

import (
	"encoding/binary"
	"io"
	"math"
	"sort"

	"llama4d/internal/model"
)

// Optimizer updates a parameter slice given its gradient slice. Both views
// may be shards of larger flat buffers.
type Optimizer interface {
	// Step applies one update to w given gradient g. The id distinguishes
	// independent parameter slices so stateful optimizers keep separate
	// moments per slice.
	Step(id int, w, g []float32)
	// StepCount returns the number of completed optimizer steps (for bias
	// correction bookkeeping and tests).
	StepCount() int
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	steps    int
	vel      map[int][]float32
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[int][]float32)}
}

// Step implements Optimizer.
func (s *SGD) Step(id int, w, g []float32) {
	if s.Momentum == 0 {
		for i := range w {
			w[i] -= s.LR * g[i]
		}
		return
	}
	v, ok := s.vel[id]
	if !ok {
		v = make([]float32, len(w))
		s.vel[id] = v
	}
	for i := range w {
		v[i] = s.Momentum*v[i] + g[i]
		w[i] -= s.LR * v[i]
	}
}

// StepCount implements Optimizer.
func (s *SGD) StepCount() int { return s.steps }

// Tick advances the step counter (call once per training step).
func (s *SGD) Tick() { s.steps++ }

// AdamW is Adam with decoupled weight decay. Moments are kept in float32
// (full precision relative to BF16 weights), matching the paper's FP32
// optimizer-state policy.
type AdamW struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	steps int
	m, v  map[int][]float32
}

// NewAdamW creates an AdamW optimizer with the given hyper-parameters.
func NewAdamW(lr float32) *AdamW {
	return &AdamW{
		LR: lr, Beta1: 0.9, Beta2: 0.95, Eps: 1e-8, WeightDecay: 0.1,
		m: make(map[int][]float32), v: make(map[int][]float32),
	}
}

// Tick advances the shared step counter; call exactly once per training
// step, before Step calls for that step.
func (a *AdamW) Tick() { a.steps++ }

// StepCount implements Optimizer.
func (a *AdamW) StepCount() int { return a.steps }

// Step implements Optimizer.
func (a *AdamW) Step(id int, w, g []float32) {
	m, ok := a.m[id]
	if !ok {
		m = make([]float32, len(w))
		a.m[id] = m
	}
	v, ok := a.v[id]
	if !ok {
		v = make([]float32, len(w))
		a.v[id] = v
	}
	t := float64(a.steps)
	if t == 0 {
		t = 1
	}
	bc1 := float32(1 - math.Pow(float64(a.Beta1), t))
	bc2 := float32(1 - math.Pow(float64(a.Beta2), t))
	for i := range w {
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
		mh := m[i] / bc1
		vh := v[i] / bc2
		w[i] -= a.LR * (mh/(float32(math.Sqrt(float64(vh)))+a.Eps) + a.WeightDecay*w[i])
	}
}

// StateBytesPerParam returns the optimizer-state footprint per parameter in
// bytes (two FP32 moments for AdamW) — the quantity ZeRO-1 shards.
func (a *AdamW) StateBytesPerParam() int { return 8 }

// SaveState writes the optimizer's step counter and moment buffers. Each
// rank persists its own (sharded) state, exactly as production sharded
// optimizer checkpoints do.
func (a *AdamW) SaveState(w io.Writer) error {
	ids := make([]int, 0, len(a.m))
	for id := range a.m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if err := binary.Write(w, binary.LittleEndian, uint32(a.steps)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	for _, id := range ids {
		if err := binary.Write(w, binary.LittleEndian, uint32(id)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(a.m[id]))); err != nil {
			return err
		}
		for _, buf := range [][]float32{a.m[id], a.v[id]} {
			for _, x := range buf {
				if err := binary.Write(w, binary.LittleEndian, math.Float32bits(x)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// LoadState restores a SaveState stream, replacing all moments.
func (a *AdamW) LoadState(r io.Reader) error {
	var steps, nIDs uint32
	if err := binary.Read(r, binary.LittleEndian, &steps); err != nil {
		return err
	}
	if err := binary.Read(r, binary.LittleEndian, &nIDs); err != nil {
		return err
	}
	a.steps = int(steps)
	a.m = make(map[int][]float32, nIDs)
	a.v = make(map[int][]float32, nIDs)
	for i := 0; i < int(nIDs); i++ {
		var id, n uint32
		if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
			return err
		}
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		m := make([]float32, n)
		v := make([]float32, n)
		for j := 0; j < int(n); j++ {
			m[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
			v[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*int(n)+4*j:]))
		}
		a.m[int(id)] = m
		a.v[int(id)] = v
	}
	return nil
}

// WarmupCosine returns the learning-rate schedule used for Llama 3
// pre-training: linear warm-up from zero to peak over warmupSteps, then
// cosine decay to minLR at totalSteps (held constant afterwards).
func WarmupCosine(peak, minLR float64, warmupSteps, totalSteps int) func(step int) float64 {
	return func(step int) float64 {
		if warmupSteps > 0 && step < warmupSteps {
			return peak * float64(step+1) / float64(warmupSteps)
		}
		if step >= totalSteps {
			return minLR
		}
		frac := float64(step-warmupSteps) / float64(totalSteps-warmupSteps)
		return minLR + 0.5*(peak-minLR)*(1+math.Cos(math.Pi*frac))
	}
}

// GradNorm returns the global L2 norm of the parameters' gradients.
func GradNorm(ps []*model.Param) float64 {
	var ss float64
	for _, p := range ps {
		for _, g := range p.G.Data {
			ss += float64(g) * float64(g)
		}
	}
	return math.Sqrt(ss)
}

// ClipGradNorm scales all gradients so their global norm is at most maxNorm;
// returns the pre-clip norm.
func ClipGradNorm(ps []*model.Param, maxNorm float64) float64 {
	norm := GradNorm(ps)
	if norm > maxNorm && norm > 0 {
		s := float32(maxNorm / norm)
		for _, p := range ps {
			p.G.Scale(s)
		}
	}
	return norm
}

// StepParams applies an optimizer to a list of model parameters, one slice
// per parameter. Call opt.Tick-style step advancement separately.
func StepParams(opt Optimizer, ps []*model.Param) {
	for i, p := range ps {
		opt.Step(i, p.W.Data, p.G.Data)
	}
}
