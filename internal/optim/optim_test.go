package optim

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"llama4d/internal/model"
	"llama4d/internal/tensor"
)

func TestSGDQuadratic(t *testing.T) {
	// Minimise f(w) = (w-3)²/2; gradient w-3.
	w := []float32{0}
	opt := NewSGD(0.1, 0)
	for i := 0; i < 200; i++ {
		g := []float32{w[0] - 3}
		opt.Step(0, w, g)
	}
	if math.Abs(float64(w[0])-3) > 1e-3 {
		t.Fatalf("SGD converged to %v, want 3", w[0])
	}
}

func TestSGDMomentumFasterOnIllConditioned(t *testing.T) {
	// f(w) = 0.5*(100*w0² + w1²): momentum should reach tolerance sooner.
	run := func(mom float32) int {
		w := []float32{1, 1}
		opt := NewSGD(0.009, mom)
		for i := 0; i < 5000; i++ {
			g := []float32{100 * w[0], w[1]}
			opt.Step(0, w, g)
			if math.Abs(float64(w[0])) < 1e-3 && math.Abs(float64(w[1])) < 1e-3 {
				return i
			}
		}
		return 5000
	}
	plain, withMom := run(0), run(0.9)
	if withMom >= plain {
		t.Fatalf("momentum (%d iters) not faster than plain (%d)", withMom, plain)
	}
}

func TestAdamWQuadratic(t *testing.T) {
	w := []float32{10}
	opt := NewAdamW(0.1)
	opt.WeightDecay = 0
	for i := 0; i < 500; i++ {
		opt.Tick()
		g := []float32{w[0] - 3}
		opt.Step(0, w, g)
	}
	if math.Abs(float64(w[0])-3) > 1e-2 {
		t.Fatalf("AdamW converged to %v, want 3", w[0])
	}
}

func TestAdamWWeightDecayShrinks(t *testing.T) {
	w := []float32{5}
	opt := NewAdamW(0.01)
	opt.WeightDecay = 0.5
	for i := 0; i < 100; i++ {
		opt.Tick()
		opt.Step(0, w, []float32{0}) // zero gradient: only decay acts
	}
	if w[0] >= 5 || w[0] < 0 {
		t.Fatalf("weight decay failed: w=%v", w[0])
	}
}

func TestAdamWIndependentSlices(t *testing.T) {
	opt := NewAdamW(0.1)
	w1, w2 := []float32{1}, []float32{1}
	opt.Tick()
	opt.Step(0, w1, []float32{1})
	opt.Step(1, w2, []float32{-1})
	if w1[0] == w2[0] {
		t.Fatal("independent slices must have independent moments")
	}
}

func TestAdamWDeterministic(t *testing.T) {
	run := func() float32 {
		w := []float32{2}
		opt := NewAdamW(0.05)
		for i := 0; i < 50; i++ {
			opt.Tick()
			opt.Step(0, w, []float32{w[0] * 0.3})
		}
		return w[0]
	}
	if math.Float32bits(run()) != math.Float32bits(run()) {
		t.Fatal("AdamW must be bitwise deterministic")
	}
}

func TestAdamWShardedMatchesUnsharded(t *testing.T) {
	// Running AdamW on two half-shards (with distinct ids) must match
	// running on the full vector: the ZeRO-1 sharded-optimizer property.
	full := []float32{1, 2, 3, 4}
	g := []float32{0.1, -0.2, 0.3, -0.4}
	o1 := NewAdamW(0.1)
	o2 := NewAdamW(0.1)
	a := append([]float32(nil), full...)
	b := append([]float32(nil), full...)
	for i := 0; i < 20; i++ {
		o1.Tick()
		o1.Step(0, a, g)
		o2.Tick()
		o2.Step(0, b[:2], g[:2])
		o2.Step(1, b[2:], g[2:])
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("sharded AdamW diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGradNormAndClip(t *testing.T) {
	p := model.NewParam("p", tensor.New(4))
	copy(p.G.Data, []float32{3, 4, 0, 0})
	ps := []*model.Param{p}
	if n := GradNorm(ps); math.Abs(n-5) > 1e-9 {
		t.Fatalf("GradNorm = %v", n)
	}
	pre := ClipGradNorm(ps, 1)
	if math.Abs(pre-5) > 1e-9 {
		t.Fatalf("pre-clip norm = %v", pre)
	}
	if n := GradNorm(ps); math.Abs(n-1) > 1e-6 {
		t.Fatalf("post-clip norm = %v", n)
	}
	// Below the threshold: no change.
	pre2 := ClipGradNorm(ps, 10)
	if math.Abs(pre2-1) > 1e-6 {
		t.Fatalf("second clip norm = %v", pre2)
	}
}

func TestStepParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p1 := model.NewParam("a", tensor.RandN(rng, 1, 3))
	p2 := model.NewParam("b", tensor.RandN(rng, 1, 3))
	p1.G.Fill(1)
	p2.G.Fill(1)
	before := p1.W.Clone()
	opt := NewSGD(0.1, 0)
	StepParams(opt, []*model.Param{p1, p2})
	if tensor.BitwiseEqual(before, p1.W) {
		t.Fatal("StepParams must update weights")
	}
}

func BenchmarkAdamWStep(b *testing.B) {
	w := make([]float32, 1<<16)
	g := make([]float32, 1<<16)
	for i := range g {
		g[i] = float32(i%13) * 1e-3
	}
	opt := NewAdamW(1e-3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Tick()
		opt.Step(0, w, g)
	}
}

func TestAdamWStateRoundTripBitwise(t *testing.T) {
	run := func(opt *AdamW, w []float32, steps int) {
		for i := 0; i < steps; i++ {
			opt.Tick()
			g := make([]float32, len(w))
			for j := range g {
				g[j] = w[j]*0.1 + float32(j)*1e-3
			}
			opt.Step(0, w, g)
		}
	}
	// Uninterrupted run.
	full := []float32{1, 2, 3, 4}
	optFull := NewAdamW(0.05)
	run(optFull, full, 10)

	// Interrupted run: 5 steps, save, restore into a fresh optimizer, 5 more.
	part := []float32{1, 2, 3, 4}
	optA := NewAdamW(0.05)
	run(optA, part, 5)
	var buf bytes.Buffer
	if err := optA.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	optB := NewAdamW(0.05)
	if err := optB.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if optB.StepCount() != 5 {
		t.Fatalf("restored step count %d", optB.StepCount())
	}
	run(optB, part, 5)
	for i := range full {
		if math.Float32bits(full[i]) != math.Float32bits(part[i]) {
			t.Fatalf("resumed AdamW diverged at %d: %v vs %v", i, full[i], part[i])
		}
	}
}

func TestWarmupCosineShape(t *testing.T) {
	lr := WarmupCosine(1.0, 0.1, 10, 100)
	// Warm-up: strictly increasing to the peak.
	for s := 1; s < 10; s++ {
		if lr(s) <= lr(s-1) {
			t.Fatalf("warm-up not increasing at %d", s)
		}
	}
	if math.Abs(lr(9)-1.0) > 1e-9 {
		t.Fatalf("peak LR %v", lr(9))
	}
	// Decay: strictly decreasing to minLR.
	for s := 11; s < 100; s++ {
		if lr(s) >= lr(s-1) {
			t.Fatalf("decay not decreasing at %d", s)
		}
	}
	if math.Abs(lr(100)-0.1) > 1e-9 || lr(1000) != 0.1 {
		t.Fatalf("final LR %v / %v", lr(100), lr(1000))
	}
	// Midpoint of the cosine is the mean of peak and min.
	mid := lr(55)
	if math.Abs(mid-0.55) > 0.02 {
		t.Fatalf("cosine midpoint %v", mid)
	}
}
