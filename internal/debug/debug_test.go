package debug

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"llama4d/internal/attention"
	"llama4d/internal/core"
	"llama4d/internal/data"
	"llama4d/internal/fsdp"
	"llama4d/internal/model"
	"llama4d/internal/tensor"
	"llama4d/internal/trace"
)

func TestFindSlowRankPaperExample(t *testing.T) {
	// Fig 8's scenario: cp=2, tp=4 on 8 GPUs; rank 2's TP collectives look
	// short (it is the group straggler) but the true bottleneck is its CP
	// peer, rank 6.
	topo := core.Topology{TP: 4, CP: 2, PP: 1, DP: 1}
	tr := SyntheticTrace(topo, 6, 1.0, 1.5, 3)
	loc := &Localizer{Topo: topo, T: tr}
	got, path := loc.FindSlowRank()
	if got != 6 {
		t.Fatalf("localised rank %d, want 6\n%s", got, Report(got, path))
	}
}

func TestFindSlowRankAcrossTopologies(t *testing.T) {
	for _, topo := range []core.Topology{
		{TP: 2, CP: 2, PP: 2, DP: 2},
		{TP: 8, CP: 1, PP: 2, DP: 1},
		{TP: 1, CP: 1, PP: 4, DP: 4},
	} {
		for _, slow := range []int{0, topo.World() / 2, topo.World() - 1} {
			tr := SyntheticTrace(topo, slow, 1.0, 2.0, 2)
			loc := &Localizer{Topo: topo, T: tr}
			if got, path := loc.FindSlowRank(); got != slow {
				t.Fatalf("topo %+v: localised %d, want %d\n%s", topo, got, slow, Report(got, path))
			}
		}
	}
}

func TestSlowRankHasShortestComm(t *testing.T) {
	// The signature the algorithm keys on: within each group, the straggler
	// shows the least communication time.
	topo := core.Topology{TP: 4, CP: 2, PP: 1, DP: 1}
	slow := 5
	tr := SyntheticTrace(topo, slow, 1.0, 1.5, 1)
	group := topo.TPGroupRanks(slow)
	for _, m := range group {
		if m == slow {
			continue
		}
		if tr.TotalDur(m, trace.Comm, "tp") <= tr.TotalDur(slow, trace.Comm, "tp") {
			t.Fatalf("rank %d tp comm not longer than straggler's", m)
		}
	}
}

func TestReportFormat(t *testing.T) {
	topo := core.Topology{TP: 2, CP: 1, PP: 1, DP: 1}
	tr := SyntheticTrace(topo, 1, 1, 2, 1)
	loc := &Localizer{Topo: topo, T: tr}
	r, path := loc.FindSlowRank()
	out := Report(r, path)
	if !strings.Contains(out, "slow rank: 1") || !strings.Contains(out, "tp") {
		t.Fatalf("report malformed:\n%s", out)
	}
}

func TestTraceChromeExportAndASCII(t *testing.T) {
	topo := core.Topology{TP: 2, CP: 1, PP: 1, DP: 1}
	tr := SyntheticTrace(topo, 0, 1, 2, 1)
	var sb strings.Builder
	if err := tr.WriteChromeJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("chrome JSON missing traceEvents")
	}
	if line := tr.ASCIITimeline(0, 40); !strings.Contains(line, "#") {
		t.Fatalf("ascii timeline missing compute: %q", line)
	}
}

func TestBitwiseCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := model.TinyConfig()
	a := model.New(cfg, rand.New(rand.NewSource(5)))
	b := model.New(cfg, rand.New(rand.NewSource(5)))
	if ok, msg := BitwiseCompare(a.Params(), b.Params()); !ok {
		t.Fatalf("identical models must compare equal: %s", msg)
	}
	b.Params()[3].W.Data[0] += 1e-6
	if ok, msg := BitwiseCompare(a.Params(), b.Params()); ok || !strings.Contains(msg, a.Params()[3].Name) {
		t.Fatalf("mismatch not detected: %v %s", ok, msg)
	}
	_ = rng
}

func TestAccumulationStudyLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	values := make([]float32, 1<<14)
	for i := range values {
		// Same-sign magnitudes (like squared-gradient statistics): the
		// worst case for a low-precision accumulator that stalls once the
		// running sum dwarfs the increments.
		v := rng.NormFloat64() * 1e-2
		if v < 0 {
			v = -v
		}
		values[i] = float32(v)
	}
	s := RunAccumulationStudy(values, []int{2, 8, 64})
	// BF16 accumulation must be far worse than FP32 — the reason the paper
	// mandates FP32 gradient accumulation.
	if s.BF16Err < 10*s.FP32Err {
		t.Fatalf("BF16 error %v not clearly above FP32 %v", s.BF16Err, s.FP32Err)
	}
	// Different chunk orders disagree (non-associativity) but only slightly.
	if s.OrderGap == 0 {
		t.Skip("chunk orders happened to agree bitwise")
	}
	for n, e := range s.ChunkErrs {
		if e > 1e-3 {
			t.Fatalf("chunking %d relative error %v too large", n, e)
		}
	}
}

func TestCriticalBuffersFindsSensitiveGradients(t *testing.T) {
	cfg := model.TinyConfig()
	m := model.New(cfg, rand.New(rand.NewSource(3)))
	env := model.SeqEnv(16, attention.Causal{})
	var batches [][2][]int
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 8; i++ {
		tokens := make([]int, 16)
		targets := make([]int, 16)
		for j := range tokens {
			tokens[j] = rng.Intn(cfg.Vocab)
			targets[j] = rng.Intn(cfg.Vocab)
		}
		batches = append(batches, [2][]int{tokens, targets})
	}
	sens := CriticalBuffers(m, batches, env)
	if len(sens) != len(m.Params()) {
		t.Fatalf("got %d sensitivities for %d params", len(sens), len(m.Params()))
	}
	// Sorted descending, and BF16 accumulation must hurt somewhere.
	for i := 1; i < len(sens); i++ {
		if sens[i].RelErr > sens[i-1].RelErr {
			t.Fatal("sensitivities not sorted")
		}
	}
	if sens[0].RelErr <= 0 {
		t.Fatal("expected at least one buffer sensitive to BF16 accumulation")
	}
	if sens[0].RelErr > 0.5 {
		t.Fatalf("suspiciously large sensitivity %v", sens[0].RelErr)
	}
}

func BenchmarkFindSlowRank(b *testing.B) {
	topo := core.Topology{TP: 8, CP: 2, PP: 4, DP: 4}
	tr := SyntheticTrace(topo, 100, 1, 2, 2)
	loc := &Localizer{Topo: topo, T: tr}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.FindSlowRank()
	}
}

// slowLayer wraps a model layer with an artificial delay — the injected
// "faulty GPU" of the end-to-end localisation test.
type slowLayer struct {
	inner model.Layer
	delay time.Duration
}

func (s *slowLayer) Forward(x *tensor.Tensor, env *model.Env) (*tensor.Tensor, any) {
	time.Sleep(s.delay)
	return s.inner.Forward(x, env)
}

func (s *slowLayer) Backward(ctx any, dy *tensor.Tensor) *tensor.Tensor {
	time.Sleep(s.delay)
	return s.inner.Backward(ctx, dy)
}

func (s *slowLayer) Params() []*model.Param { return s.inner.Params() }

func TestLocaliseSlowRankInLiveCluster(t *testing.T) {
	// End-to-end §6.1: run a REAL 4-rank (tp=2 × cp=2) training cluster with
	// one artificially slow GPU, record actual collective wait times through
	// the comm Recorder, and localise the straggler from the live trace.
	cfg := core.Config{
		Model: model.Config{Vocab: 32, Dim: 16, Hidden: 32, NHeads: 4, NKVHeads: 2,
			NLayers: 2, MaxSeq: 16, RopeBase: 10000},
		Topo: core.Topology{TP: 2, CP: 2, PP: 1, DP: 1},
		V:    1, NMB: 2, NC: 2,
		ZeRO: fsdp.ZeRO1, Seq: 16, GBS: 2, LR: 1e-3, UseDocMask: true, Seed: 13,
	}
	cl, err := core.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	collector := &trace.Collector{}
	cl.World.Recorder = collector

	const slow = 3
	st := cl.Ranks[slow].Exec.Stages[0]
	st.Layers[0] = &slowLayer{inner: st.Layers[0], delay: 2 * time.Millisecond}

	gen := &data.Generator{Vocab: cfg.Model.Vocab, Seq: cfg.Seq, AvgDocLen: 6, Seed: 14}
	for step := int64(0); step < 3; step++ {
		cl.Step(gen, step)
	}

	loc := &Localizer{Topo: cfg.Topo, T: collector.Snapshot()}
	got, path := loc.FindSlowRank()
	if got != slow {
		t.Fatalf("live localisation found rank %d, want %d\n%s", got, slow, Report(got, path))
	}
}
