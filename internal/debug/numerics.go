package debug

import (
	"fmt"
	"math"
	"sort"

	"llama4d/internal/bf16"
	"llama4d/internal/model"
	"llama4d/internal/tensor"
)

// BitwiseCompare reports whether two parameter sets match bit-for-bit,
// naming the first mismatch. This is the §6.2 discriminator: a parallel
// implementation compared against a sequential reference that emulates the
// same accumulation order must match bitwise — any difference is an
// implementation bug, not a numerics artifact.
func BitwiseCompare(a, b []*model.Param) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("parameter count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !tensor.BitwiseEqual(a[i].W, b[i].W) {
			return false, fmt.Sprintf("weights of %s differ (max %g)", a[i].Name, tensor.MaxDiff(a[i].W, b[i].W))
		}
		if !tensor.BitwiseEqual(a[i].G, b[i].G) {
			return false, fmt.Sprintf("gradients of %s differ (max %g)", a[i].Name, tensor.MaxDiff(a[i].G, b[i].G))
		}
	}
	return true, ""
}

// AccumulationStudy quantifies the §6.2 precision ladder on a synthetic
// gradient reduction of n terms: exact (float64), FP32 accumulation in a
// given chunk order, and BF16 accumulation. Returned errors are relative to
// the exact sum.
type AccumulationStudy struct {
	N         int
	FP32Err   float64 // FP32 accumulation error
	BF16Err   float64 // BF16 accumulator error
	OrderGap  float64 // max pairwise gap between FP32 chunk orders
	ChunkErrs map[int]float64
}

// RunAccumulationStudy sums the same pseudo-gradient values under different
// precisions and chunkings.
func RunAccumulationStudy(values []float32, chunkings []int) AccumulationStudy {
	var exact float64
	for _, v := range values {
		exact += float64(v)
	}
	study := AccumulationStudy{N: len(values), ChunkErrs: make(map[int]float64)}
	rel := func(x float32) float64 {
		return math.Abs(float64(x)-exact) / math.Max(math.Abs(exact), 1e-30)
	}
	study.FP32Err = rel(bf16.SumChunked(values, 1))
	study.BF16Err = rel(bf16.SumBF16(values))
	var sums []float32
	for _, n := range chunkings {
		s := bf16.SumChunked(values, n)
		study.ChunkErrs[n] = rel(s)
		sums = append(sums, s)
	}
	for i := range sums {
		for j := i + 1; j < len(sums); j++ {
			gap := math.Abs(float64(sums[i]) - float64(sums[j]))
			if gap > study.OrderGap {
				study.OrderGap = gap
			}
		}
	}
	return study
}

// BufferSensitivity measures how much a parameter's gradient degrades when
// its micro-batch accumulation runs through a BF16 buffer instead of FP32.
type BufferSensitivity struct {
	Name   string
	RelErr float64
}

// CriticalBuffers runs nmb micro-batch backwards twice — once accumulating
// gradients in FP32 (the production policy) and once rounding the
// accumulator to BF16 after every micro-batch — and ranks parameters by the
// relative error introduced. The top of the list is exactly the set of
// "critical gradient buffers that require high-precision floating-point
// accumulations" the paper's methodology identifies (§6.2).
func CriticalBuffers(m *model.Model, batches [][2][]int, env *model.Env) []BufferSensitivity {
	params := m.Params()

	run := func(roundBF16 bool) []*tensor.Tensor {
		m.ZeroGrads()
		for _, b := range batches {
			// Accumulate one micro-batch.
			prev := make([]*tensor.Tensor, len(params))
			if roundBF16 {
				for i, p := range params {
					prev[i] = p.G.Clone()
				}
			}
			_, ctx := m.ForwardLoss(b[0], b[1], env, 1/float32(len(batches)))
			m.Backward(ctx)
			if roundBF16 {
				// Emulate a BF16 gradient buffer: the running sum lives in
				// BF16, so every accumulation rounds.
				for i, p := range params {
					for j := range p.G.Data {
						delta := p.G.Data[j] - prev[i].Data[j]
						p.G.Data[j] = bf16.Add(bf16.Round(prev[i].Data[j]), delta)
					}
				}
			}
		}
		out := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			out[i] = p.G.Clone()
		}
		return out
	}

	fp32 := run(false)
	lowp := run(true)
	sens := make([]BufferSensitivity, len(params))
	for i := range params {
		var num, den float64
		for j := range fp32[i].Data {
			d := float64(fp32[i].Data[j]) - float64(lowp[i].Data[j])
			num += d * d
			den += float64(fp32[i].Data[j]) * float64(fp32[i].Data[j])
		}
		rel := 0.0
		if den > 0 {
			rel = math.Sqrt(num / den)
		}
		sens[i] = BufferSensitivity{Name: params[i].Name, RelErr: rel}
	}
	sort.Slice(sens, func(i, j int) bool { return sens[i].RelErr > sens[j].RelErr })
	return sens
}
