// Package debug implements the paper's §6 debugging methodology as code:
// top-down slow-rank localisation across the [DP → PP → CP → TP] hierarchy
// (§6.1, Fig 8), and the numerical-issue toolkit (§6.2) — bitwise
// comparison against order-emulated references and the identification of
// gradient buffers that need FP32 accumulation.
package debug

import (
	"fmt"

	"llama4d/internal/core"
	"llama4d/internal/trace"
)

// Localizer finds the root-cause slow rank in a multi-dimensional trace.
//
// The key observation (§6.1): within a process group, the slowest member
// shows the *shortest* communication time — everyone else's collectives
// stretch while waiting for it. A slow collective therefore implicates the
// member with minimal communication, and the search proceeds top-down from
// the outermost parallelism level so that inner-group symptoms (Fig 8's
// Rank 2) are traced to their outer-group cause (Rank 6).
type Localizer struct {
	Topo core.Topology
	T    *trace.Trace
}

// Step records one narrowing decision for the diagnostic report.
type Step struct {
	Dim        string
	Candidates []int
}

// FindSlowRank narrows candidates dimension by dimension, outermost first,
// then returns the candidate with the largest compute time — the root
// cause — along with the narrowing path.
func (l *Localizer) FindSlowRank() (int, []Step) {
	candidates := make(map[int]bool)
	for r := 0; r < l.Topo.World(); r++ {
		candidates[r] = true
	}
	var path []Step
	dims := []struct {
		name   string
		groups func(int) []int
	}{
		{"dp", l.Topo.DPGroupRanks},
		{"pp", l.Topo.PPGroupRanks},
		{"cp", l.Topo.CPGroupRanks},
		{"tp", l.Topo.TPGroupRanks},
	}
	for _, dim := range dims {
		next := make(map[int]bool)
		seen := make(map[int]bool) // group representative dedup
		for r := range candidates {
			group := dim.groups(r)
			if seen[group[0]] {
				continue
			}
			seen[group[0]] = true
			// The straggler of this group: minimal communication time in
			// this dimension (it never waits; everyone waits for it).
			best, bestDur := -1, 0.0
			for _, m := range group {
				if !candidates[m] {
					continue
				}
				d := l.T.TotalDur(m, trace.Comm, dim.name)
				if best == -1 || d < bestDur {
					best, bestDur = m, d
				}
			}
			if best >= 0 {
				next[best] = true
			}
		}
		if len(next) > 0 {
			candidates = next
		}
		path = append(path, Step{Dim: dim.name, Candidates: sortedKeys(candidates)})
	}
	// Root cause: the remaining candidate with the largest compute time.
	best, bestDur := -1, -1.0
	for r := range candidates {
		if d := l.T.TotalDur(r, trace.Compute, ""); d > bestDur {
			best, bestDur = r, d
		}
	}
	if bestDur == 0 {
		// Communication-only trace (live Collector runs record no compute
		// events): the straggler is the candidate that waited least overall.
		best, bestDur = -1, 0
		for r := range candidates {
			d := l.T.TotalDur(r, trace.Comm, "")
			if best == -1 || d < bestDur {
				best, bestDur = r, d
			}
		}
	}
	return best, path
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// SyntheticTrace generates the trace a straggler produces: every rank does
// `base` seconds of compute per step (the slow rank `slowdown`× more), and
// each collective in each dimension stretches every member's communication
// by how long it waits for the group's latest arrival — the signature the
// localisation algorithm keys on.
func SyntheticTrace(topo core.Topology, slowRank int, base, slowdown float64, steps int) *trace.Trace {
	t := &trace.Trace{}
	computeOf := func(r int) float64 {
		if r == slowRank {
			return base * slowdown
		}
		return base
	}
	dims := []struct {
		name   string
		groups func(int) []int
	}{
		{"tp", topo.TPGroupRanks},
		{"cp", topo.CPGroupRanks},
		{"pp", topo.PPGroupRanks},
		{"dp", topo.DPGroupRanks},
	}
	for s := 0; s < steps; s++ {
		t0 := float64(s) * base * (slowdown + 2)
		for r := 0; r < topo.World(); r++ {
			t.Add(trace.Event{Rank: r, Kind: trace.Compute, Name: "step.compute",
				Start: t0, Dur: computeOf(r)})
			at := t0 + computeOf(r)
			for _, dim := range dims {
				group := dim.groups(r)
				slowest := 0.0
				for _, m := range group {
					if c := computeOf(m); c > slowest {
						slowest = c
					}
				}
				wait := slowest - computeOf(r) + 0.001*base // epsilon: wire time
				t.Add(trace.Event{Rank: r, Kind: trace.Comm, Group: dim.name,
					Name: dim.name + ".collective", Start: at, Dur: wait})
				at += wait
			}
		}
	}
	return t
}

// Report formats a localisation result.
func Report(rank int, path []Step) string {
	s := ""
	for _, st := range path {
		s += fmt.Sprintf("  after %-2s: candidates %v\n", st.Dim, st.Candidates)
	}
	return fmt.Sprintf("slow rank: %d\n%s", rank, s)
}
