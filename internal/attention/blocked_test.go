package attention

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"llama4d/internal/tensor"
)

// checkBlockedVsDense asserts the blocked engine's three kernels (Forward,
// Backward, PartialForwardInto) are bitwise identical to the dense reference
// on one (mask, qPos, kOff) configuration — the §6.2 determinism contract the
// tile-skipping optimisation must preserve.
func checkBlockedVsDense(t *testing.T, label string, seed int64, sq, sk, d int, m Mask, qPos []int, kOff int) {
	t.Helper()
	q, k, v := randQKV(seed, sq, sk, d)

	dense := DenseForward(q, k, v, m, qPos, kOff)
	blocked := Forward(q, k, v, m, qPos, kOff)
	if !tensor.BitwiseEqual(dense.O, blocked.O) {
		t.Fatalf("%s: blocked forward O differs from dense", label)
	}
	if !tensor.BitwiseEqual(dense.P, blocked.P) {
		t.Fatalf("%s: blocked forward P differs from dense", label)
	}

	dO := tensor.RandN(rand.New(rand.NewSource(seed+1)), 1, sq, d)
	wdq, wdk, wdv := DenseBackward(q, k, v, dense.P, dO)
	gdq, gdk, gdv := Backward(q, k, v, blocked.P, dO, m, qPos, kOff)
	if !tensor.BitwiseEqual(wdq, gdq) {
		t.Fatalf("%s: blocked dQ differs from dense", label)
	}
	if !tensor.BitwiseEqual(wdk, gdk) {
		t.Fatalf("%s: blocked dK differs from dense", label)
	}
	if !tensor.BitwiseEqual(wdv, gdv) {
		t.Fatalf("%s: blocked dV differs from dense", label)
	}

	want := DensePartialForwardInto(nil, q, k, v, m, qPos, kOff)
	got := PartialForwardInto(nil, q, k, v, m, qPos, kOff)
	if !tensor.BitwiseEqual(want.O, got.O) {
		t.Fatalf("%s: blocked partial O differs from dense", label)
	}
	for i := range want.M {
		if math.Float32bits(want.M[i]) != math.Float32bits(got.M[i]) ||
			math.Float32bits(want.L[i]) != math.Float32bits(got.L[i]) {
			t.Fatalf("%s: blocked partial stats differ from dense at row %d", label, i)
		}
	}
	ReleasePartial(want)
	ReleasePartial(got)
}

// TestBlockedMatchesDenseGrid is the bitwise property grid of the blocked
// engine: every mask family (Full, Causal, Document, and an unknown mask
// forced onto the conservative all-partial path) × sequence lengths
// straddling the tile size (1, block−1, block, block+1, odd > 2 blocks) ×
// key offsets {0, +3, −3} × four tilings including rectangular tiles. Each
// point checks forward, backward, and the ring-attention partial kernel
// bitwise against the dense references.
func TestBlockedMatchesDenseGrid(t *testing.T) {
	const d = 8
	prevOn := SetBlocked(true)
	defer SetBlocked(prevOn)
	pr, pc := Tiling()
	defer SetTiling(pr, pc)

	seed := int64(9000)
	for _, til := range [][2]int{{4, 4}, {8, 8}, {16, 8}, {64, 64}} {
		SetTiling(til[0], til[1])
		block := til[0]
		seen := map[int]bool{}
		for _, sq := range []int{1, block - 1, block, block + 1, 2*block + 3} {
			if sq < 1 || seen[sq] {
				continue
			}
			seen[sq] = true
			sk := sq + 5 // rectangular, straddles column-tile bounds too
			for _, kOff := range []int{0, 3, -3} {
				masks := map[string]Mask{"full": Full{}, "causal": Causal{}, "odd": oddMask{}}
				if kOff >= 0 {
					// Document ids must cover every global position probed;
					// negative key offsets never occur under document masks
					// (keys are real sequence positions).
					n := kOff + sk
					if sq > n {
						n = sq
					}
					lengths := []int{n/3 + 1, 0, n/4 + 1, 2} // includes a zero-length doc
					masks["document"] = Document{DocID: DocIDsFromLengths(lengths, n)}
				}
				for name, m := range masks {
					seed++
					label := labelFor(name, til, sq, kOff)
					checkBlockedVsDense(t, label, seed, sq, sk, d, m, Iota(sq), kOff)
					if name == "causal" || name == "document" {
						// Ring-attention probes: rows whose global position is
						// negative (they own no keys in this block yet).
						qNeg := make([]int, sq)
						for i := range qNeg {
							qNeg[i] = i - 2
						}
						checkBlockedVsDense(t, label+"/qneg", seed, sq, sk, d, m, qNeg, kOff)
					}
				}
			}
		}
	}
}

func labelFor(mask string, til [2]int, sq, kOff int) string {
	return fmt.Sprintf("%s/%dx%d/sq=%d/kOff=%d", mask, til[0], til[1], sq, kOff)
}

// TestGridClassificationExact verifies the tile classifier against the
// per-element mask oracle: an empty tile must contain no allowed pair, a
// full tile only allowed pairs, AllowedPairs must equal the brute-force
// count, and EmptyPairs must equal the summed area of empty tiles. For
// contiguous query positions the classification must also be tight: a tile
// with no allowed pair is marked empty, an all-allowed tile full.
func TestGridClassificationExact(t *testing.T) {
	pr, pc := Tiling()
	defer SetTiling(pr, pc)
	SetTiling(4, 4)

	docIDs := DocIDsFromLengths([]int{7, 0, 5, 9, 1}, 30)
	cases := []struct {
		name string
		m    Mask
		qPos []int
		kOff int
		sk   int
	}{
		{"causal", Causal{}, Iota(19), 0, 19},
		{"causal_koff", Causal{}, Iota(19), 5, 14},
		{"causal_neg", Causal{}, []int{-2, -1, 0, 1, 2, 3, 4, 5}, 0, 12},
		{"document", Document{DocID: docIDs}, Iota(30), 0, 30},
		{"document_koff", Document{DocID: docIDs}, Iota(22), 3, 27},
		{"doc_ring_chunks", Document{DocID: docIDs}, append(Iota(8), 22, 23, 24, 25, 26, 27, 28, 29), 0, 30},
		{"full", Full{}, Iota(10), 0, 13},
		{"odd", oddMask{}, Iota(10), 0, 13},
	}
	for _, tc := range cases {
		g := BuildGrid(tc.m, tc.qPos, tc.kOff, tc.sk)
		var brute int64
		var emptyArea int64
		for rt := 0; rt < g.NRows; rt++ {
			r0 := rt * g.TileRows
			r1 := min(r0+g.TileRows, g.Sq)
			for ct := 0; ct < g.NCols; ct++ {
				c0 := ct * g.TileCols
				c1 := min(c0+g.TileCols, g.Sk)
				allowed, total := 0, 0
				for i := r0; i < r1; i++ {
					for j := c0; j < c1; j++ {
						total++
						q, k := tc.qPos[i], tc.kOff+j
						if q >= 0 && tc.m.Allowed(q, k) {
							allowed++
							brute++
						}
					}
				}
				kind := g.Kind(rt, ct)
				if kind == TileEmpty && allowed != 0 {
					t.Fatalf("%s: tile (%d,%d) marked empty but has %d allowed pairs", tc.name, rt, ct, allowed)
				}
				if kind == TileFull && allowed != total {
					t.Fatalf("%s: tile (%d,%d) marked full but only %d/%d pairs allowed", tc.name, rt, ct, allowed, total)
				}
				if kind == TileEmpty {
					emptyArea += int64(total)
				}
				// Tightness for the interval-classified masks on contiguous rows.
				if _, isOdd := tc.m.(oddMask); !isOdd {
					if allowed == 0 && kind != TileEmpty && contiguous(tc.qPos[r0:r1]) {
						t.Fatalf("%s: tile (%d,%d) has no allowed pair but is not empty", tc.name, rt, ct)
					}
					if allowed == total && kind != TileFull && contiguous(tc.qPos[r0:r1]) {
						t.Fatalf("%s: tile (%d,%d) is all-allowed but not marked full", tc.name, rt, ct)
					}
				}
			}
		}
		if g.AllowedPairs != brute {
			t.Fatalf("%s: grid reports %d allowed pairs, brute force %d", tc.name, g.AllowedPairs, brute)
		}
		if g.EmptyPairs != emptyArea {
			t.Fatalf("%s: grid reports %d empty pairs, tile areas sum to %d", tc.name, g.EmptyPairs, emptyArea)
		}
		if got := g.FullTiles + g.PartialTiles + g.EmptyTiles; got != int64(len(g.Kinds)) {
			t.Fatalf("%s: tile census %d != %d tiles", tc.name, got, len(g.Kinds))
		}
	}
}

func contiguous(qPos []int) bool {
	for i := 1; i < len(qPos); i++ {
		if qPos[i] != qPos[i-1]+1 {
			return false
		}
	}
	return true
}

// TestBlockedFLOPAndStatsAccounting pins the effective-FLOP counter and the
// sparsity stats to their contracts: Forward counts 2 matmuls and Backward 4
// at nominal 2·m·k·n each, the effective counter subtracts exactly
// 2·d·EmptyPairs per matmul, and each engine call records exactly one grid
// summary into the package stats.
func TestBlockedFLOPAndStatsAccounting(t *testing.T) {
	pr, pc := Tiling()
	defer SetTiling(pr, pc)
	SetTiling(4, 4)

	const sq, sk, d = 16, 16, 8
	m := Document{DocID: DocIDsFromLengths([]int{6, 7, 3}, sk)}
	qPos := Iota(sq)
	q, k, v := randQKV(515, sq, sk, d)
	g := BuildGrid(m, qPos, 0, sk)
	if g.EmptyPairs == 0 {
		t.Fatal("test mask produces no empty tiles — accounting not exercised")
	}

	tensor.ResetFLOPCount()
	s0 := StatsSnapshot()
	out := Forward(q, k, v, m, qPos, 0)
	nominalFwd := int64(2 * 2 * sq * sk * d)
	if got := tensor.FLOPCount(); got != nominalFwd {
		t.Fatalf("forward nominal FLOPs %d, want %d", got, nominalFwd)
	}
	if got, want := tensor.EffectiveFLOPCount(), nominalFwd-2*2*int64(d)*g.EmptyPairs; got != want {
		t.Fatalf("forward effective FLOPs %d, want %d", got, want)
	}
	delta := StatsSnapshot().Sub(s0)
	if delta.Calls != 1 || delta != g.Summary() {
		t.Fatalf("forward stats delta %+v != grid summary %+v", delta, g.Summary())
	}

	tensor.ResetFLOPCount()
	dO := tensor.RandN(rand.New(rand.NewSource(516)), 1, sq, d)
	Backward(q, k, v, out.P, dO, m, qPos, 0)
	nominalBwd := int64(4 * 2 * sq * sk * d)
	if got := tensor.FLOPCount(); got != nominalBwd {
		t.Fatalf("backward nominal FLOPs %d, want %d", got, nominalBwd)
	}
	if got, want := tensor.EffectiveFLOPCount(), nominalBwd-4*2*int64(d)*g.EmptyPairs; got != want {
		t.Fatalf("backward effective FLOPs %d, want %d", got, want)
	}

	tensor.ResetFLOPCount()
	s1 := StatsSnapshot()
	p := PartialForwardInto(nil, q, k, v, m, qPos, 0)
	ReleasePartial(p)
	nominalPart := int64(2 * sq * sk * d) // the scores matmul; the dense partial's PV sweep is uncounted
	if got := tensor.FLOPCount(); got != nominalPart {
		t.Fatalf("partial nominal FLOPs %d, want %d", got, nominalPart)
	}
	if got, want := tensor.EffectiveFLOPCount(), nominalPart-2*int64(d)*g.EmptyPairs; got != want {
		t.Fatalf("partial effective FLOPs %d, want %d", got, want)
	}
	if delta := StatsSnapshot().Sub(s1); delta.Calls != 1 {
		t.Fatalf("partial recorded %d calls, want 1", delta.Calls)
	}
	tensor.ResetFLOPCount()
}

// TestSetTilingValidation covers the toggle API: SetTiling rejects
// non-positive tiles, and SetBlocked/SetTiling return the previous values
// for restoration.
func TestSetTilingValidation(t *testing.T) {
	pr, pc := Tiling()
	defer SetTiling(pr, pc)
	defer func() {
		if recover() == nil {
			t.Fatal("SetTiling(0, 4) did not panic")
		}
	}()
	r0, c0 := SetTiling(32, 16)
	if r1, c1 := SetTiling(r0, c0); r1 != 32 || c1 != 16 {
		t.Fatalf("SetTiling returned (%d,%d), want (32,16)", r1, c1)
	}
	on := SetBlocked(false)
	if BlockedEnabled() {
		t.Fatal("SetBlocked(false) left the engine enabled")
	}
	SetBlocked(on)
	SetTiling(0, 4)
}
