package attention

import (
	"math/rand"
	"testing"

	"llama4d/internal/tensor"
)

// benchDocLengths draws a deterministic packed-document length distribution
// with the given mean (uniform on 1..2·avg−1), covering at least seq tokens.
func benchDocLengths(avg, seq int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var out []int
	total := 0
	for total < seq {
		n := 1 + rng.Intn(2*avg-1)
		out = append(out, n)
		total += n
	}
	return out
}

// BenchmarkAttentionMasked is the before/after sweep of the blocked engine on
// the training hot path: one full forward+backward of a 1024-token head
// (d=64) under document masks of varying mean length plus the plain causal
// mask, each timed with the dense reference (impl=dense) and the blocked
// engine (impl=blocked). A bitwise guard runs before timing for every
// distribution, so smoke-bench catches any divergence; BENCH_attention.json
// is generated from this sweep by make bench, and the ≥1.5× geomean speedup
// acceptance is computed over the distribution sweep.
func BenchmarkAttentionMasked(b *testing.B) {
	const seq, d = 1024, 64
	dists := []struct {
		name   string
		avgLen int // 0 means plain causal
	}{
		{"dist=docs64", 64},
		{"dist=docs128", 128},
		{"dist=docs256", 256},
		{"dist=docs512", 512},
		{"dist=causal", 0},
	}

	prev := SetBlocked(true)
	defer SetBlocked(prev)
	qPos := Iota(seq)
	for di, dist := range dists {
		var m Mask = Causal{}
		if dist.avgLen > 0 {
			m = Document{DocID: DocIDsFromLengths(benchDocLengths(dist.avgLen, seq, int64(1000+di)), seq)}
		}
		q, k, v := randQKV(int64(2000+di), seq, seq, d)
		dO := tensor.RandN(rand.New(rand.NewSource(int64(3000+di))), 1, seq, d)

		// Bitwise guard: the blocked engine must reproduce the dense kernels
		// exactly on this distribution before any timing means anything.
		dense := DenseForward(q, k, v, m, qPos, 0)
		blocked := Forward(q, k, v, m, qPos, 0)
		if !tensor.BitwiseEqual(dense.O, blocked.O) || !tensor.BitwiseEqual(dense.P, blocked.P) {
			b.Fatalf("%s: impl=dense and impl=blocked forward disagree", dist.name)
		}
		wdq, wdk, wdv := DenseBackward(q, k, v, dense.P, dO)
		gdq, gdk, gdv := Backward(q, k, v, blocked.P, dO, m, qPos, 0)
		if !tensor.BitwiseEqual(wdq, gdq) || !tensor.BitwiseEqual(wdk, gdk) || !tensor.BitwiseEqual(wdv, gdv) {
			b.Fatalf("%s: impl=dense and impl=blocked backward disagree", dist.name)
		}
		tensor.Put(dense.O, dense.P, blocked.O, blocked.P, wdq, wdk, wdv, gdq, gdk, gdv)

		b.Run(dist.name+"/impl=dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := DenseForward(q, k, v, m, qPos, 0)
				dq, dk, dv := DenseBackward(q, k, v, out.P, dO)
				tensor.Put(out.O, out.P, dq, dk, dv)
			}
		})
		b.Run(dist.name+"/impl=blocked", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := Forward(q, k, v, m, qPos, 0)
				dq, dk, dv := Backward(q, k, v, out.P, dO, m, qPos, 0)
				tensor.Put(out.O, out.P, dq, dk, dv)
			}
		})
	}
}
