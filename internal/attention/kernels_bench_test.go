package attention

import (
	"math"
	"math/rand"
	"testing"

	"llama4d/internal/tensor"
)

// seedPartialForward is a frozen copy of the pre-overhaul kernel: seed
// single-accumulator MatMulT, per-element interface-dispatched mask calls in
// the score loop, and fresh allocations for every buffer. The live kernel is
// benchmarked against it under impl=before / impl=after in make bench.
func seedPartialForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	s := seedMatMulT(q, k)
	out := &Partial{O: tensor.New(sq, d), M: make([]float32, sq), L: make([]float32, sq)}
	for i := 0; i < sq; i++ {
		row := s.Row(i)
		maxv := float32(math.Inf(-1))
		for j := 0; j < sk; j++ {
			if m.Allowed(qPos[i], kOff+j) {
				row[j] *= scale
				if row[j] > maxv {
					maxv = row[j]
				}
			} else {
				row[j] = float32(math.Inf(-1))
			}
		}
		out.M[i] = maxv
		if math.IsInf(float64(maxv), -1) {
			continue
		}
		oi := out.O.Row(i)
		var l float32
		for j := 0; j < sk; j++ {
			if math.IsInf(float64(row[j]), -1) {
				continue
			}
			e := float32(math.Exp(float64(row[j] - maxv)))
			l += e
			vj := v.Row(j)
			for c := 0; c < d; c++ {
				oi[c] += e * vj[c]
			}
		}
		out.L[i] = l
	}
	return out
}

func seedMatMulT(a, b *tensor.Tensor) *tensor.Tensor {
	m, k := a.Rows(), a.Cols()
	n := b.Rows()
	out := tensor.New(m, n)
	for i := 0; i < m; i++ {
		ai := a.Data[i*k : (i+1)*k]
		oi := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.Data[j*k : (j+1)*k]
			var s float32
			for p := range ai {
				s += ai[p] * bj[p]
			}
			oi[j] = s
		}
	}
	return out
}

// BenchmarkKernelPartialForward runs the flash-style partial kernel on one
// 256-key block at head dim 64, under the paper's document mask — the shape
// and mask a CP rank sees per head. impl=after streams through a reused
// scratch Partial the way ring attention does.
func BenchmarkKernelPartialForward(b *testing.B) {
	const sq, sk, d = 256, 256, 64
	q, k, v := randQKV(77, sq, sk, d)
	m := Document{DocID: DocIDsFromLengths([]int{100, 77, 200}, 512)}
	qPos := Iota(sq)

	// Both variants visit allowed keys in the same order with the same
	// scaling, so the partials must agree bitwise, not just approximately.
	before := seedPartialForward(q, k, v, m, qPos, 0)
	after := PartialForward(q, k, v, m, qPos, 0)
	if !tensor.BitwiseEqual(before.O, after.O) {
		b.Fatal("impl=before and impl=after disagree")
	}
	ReleasePartial(after)

	b.Run("impl=before", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seedPartialForward(q, k, v, m, qPos, 0)
		}
	})
	b.Run("impl=after", func(b *testing.B) {
		var scratch *Partial
		for i := 0; i < b.N; i++ {
			scratch = PartialForwardInto(scratch, q, k, v, m, qPos, 0)
		}
		ReleasePartial(scratch)
	})
}

// BenchmarkKernelBlockedForward measures the mask-structured blocked engine
// against the dense reference on a document-masked 512-key head — the
// blocked-vs-dense bitwise guard runs before timing, so smoke-bench catches
// any divergence between the two implementations.
func BenchmarkKernelBlockedForward(b *testing.B) {
	const sq, sk, d = 256, 512, 64
	rng := rand.New(rand.NewSource(88))
	q := tensor.RandN(rng, 0.5, sq, d)
	k := tensor.RandN(rng, 0.5, sk, d)
	v := tensor.RandN(rng, 0.5, sk, d)
	m := Document{DocID: DocIDsFromLengths([]int{200, 150, 162}, sk)}
	qPos := Iota(sq)

	prev := SetBlocked(true)
	defer SetBlocked(prev)
	dense := DenseForward(q, k, v, m, qPos, 0)
	blocked := Forward(q, k, v, m, qPos, 0)
	if !tensor.BitwiseEqual(dense.O, blocked.O) || !tensor.BitwiseEqual(dense.P, blocked.P) {
		b.Fatal("impl=dense and impl=blocked disagree")
	}
	tensor.Put(dense.O, dense.P, blocked.O, blocked.P)

	b.Run("impl=dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := DenseForward(q, k, v, m, qPos, 0)
			tensor.Put(out.O, out.P)
		}
	})
	b.Run("impl=blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := Forward(q, k, v, m, qPos, 0)
			tensor.Put(out.O, out.P)
		}
	})
}
