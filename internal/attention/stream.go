package attention

import (
	"math"

	"llama4d/internal/tensor"
)

// Streamed blocked attention: the score plane of one head is filled
// incrementally as key blocks arrive (ring context parallelism), then
// finished with the same masked-softmax / P·V sweep the one-shot blocked
// engine runs. Because every score element is one independent running dot
// over the head dimension in increasing order — exactly the dense MatMulT
// and blockedScoreRows rounding — the arrival order of blocks is bitwise
// invisible: StreamScores over any partition of the key axis followed by
// StreamFinish equals blockedForward equals DenseForward, element for
// element.

// StreamScores computes s[i][j] = q[i]·k[j] for the key run occupying global
// score columns [colStart, colStart+nCols), where key j lives in row
// rowOff+(j-colStart) of kBlk at head columns [kvOff, kvOff+d). Only
// non-empty tiles of g are touched; empty-tile entries keep the exact +0 the
// zeroed score plane was allocated with. Each element is one ascending
// running sum over the head dim — the dense kernel's rounding sequence — so
// block boundaries and tile traversal order never change any bit.
func StreamScores(s, q, kBlk *tensor.Tensor, kvOff, rowOff, colStart, nCols int, g *Grid) {
	sq, d := q.Rows(), q.Cols()
	kw := kBlk.Cols()
	n := s.Cols()
	sd, qd, kd := s.Data, q.Data, kBlk.Data
	cEnd := colStart + nCols
	ct0 := colStart / g.TileCols
	// Swept pairs of this column strip, for worker sizing only.
	var swept int
	for ct := ct0; ct < g.NCols; ct++ {
		c0, c1 := g.colBand(ct)
		c0, c1 = max(c0, colStart), min(c1, cEnd)
		if c0 >= c1 {
			break
		}
		for rt := 0; rt < g.NRows; rt++ {
			if g.Kind(rt, ct) != TileEmpty {
				swept += (c1 - c0) * g.TileRows
			}
		}
	}
	body := func(lo, hi int) {
		for rt := lo / g.TileRows; rt < g.NRows && rt*g.TileRows < hi; rt++ {
			r0, r1 := g.rowBand(rt)
			r0, r1 = max(r0, lo), min(r1, hi)
			for ct := ct0; ct < g.NCols; ct++ {
				c0, c1 := g.colBand(ct)
				c0, c1 = max(c0, colStart), min(c1, cEnd)
				if c0 >= c1 {
					break
				}
				if g.Kind(rt, ct) == TileEmpty {
					continue
				}
				base := (rowOff - colStart) * kw
				for i := r0; i < r1; i++ {
					qi := qd[i*d : (i+1)*d]
					si := sd[i*n : (i+1)*n]
					j := c0
					for ; j+3 < c1; j += 4 {
						k0 := kd[base+j*kw+kvOff : base+j*kw+kvOff+d]
						k1 := kd[base+(j+1)*kw+kvOff : base+(j+1)*kw+kvOff+d]
						k2 := kd[base+(j+2)*kw+kvOff : base+(j+2)*kw+kvOff+d]
						k3 := kd[base+(j+3)*kw+kvOff : base+(j+3)*kw+kvOff+d]
						var s0, s1, s2, s3 float32
						for p, qp := range qi {
							s0 += qp * k0[p]
							s1 += qp * k1[p]
							s2 += qp * k2[p]
							s3 += qp * k3[p]
						}
						si[j], si[j+1], si[j+2], si[j+3] = s0, s1, s2, s3
					}
					for ; j < c1; j++ {
						kj := kd[base+j*kw+kvOff : base+j*kw+kvOff+d]
						var sum float32
						for p, qp := range qi {
							sum += qp * kj[p]
						}
						si[j] = sum
					}
				}
			}
		}
	}
	if workers := tensor.Workers(sq, swept*d); workers <= 1 {
		body(0, sq)
	} else {
		tensor.ParallelRows(sq, workers, body)
	}
}

// StreamFinish completes one head whose raw scores were streamed into s
// ([sq, seq], zero-allocated, non-empty tiles filled by StreamScores): it
// runs the blocked masked softmax and the zero-skipping P·V accumulation,
// records the tile census and FLOPs exactly as blockedForward does for a
// one-shot call over the same grid, and returns the head output plus the
// probability plane (s, normalised in place) for the backward pass. Bitwise
// identical to blockedForward(q, kFull, v, ...) — and therefore to
// DenseForward — per row.
func StreamFinish(s, v *tensor.Tensor, m Mask, qPos []int, g *Grid, rec *Recorder) *Output {
	sq, sk := s.Rows(), s.Cols()
	d := v.Cols()
	scale := float32(1 / math.Sqrt(float64(d)))
	recordGrid(g)
	rec.Record(g, 2, d)
	eff := effFLOPs(g, d)
	tensor.CountMatMulFLOPs(sq, d, sk, eff) // scores q@kᵀ (streamed)
	tensor.CountMatMulFLOPs(sq, sk, d, eff) // output p@v
	o := tensor.Get(sq, d)
	body := func(lo, hi int) {
		blockedSoftmaxRows(s, m, qPos, 0, g, scale, lo, hi)
		blockedPVRows(o, s, v, g, lo, hi)
	}
	if workers := tensor.Workers(sq, sweptWork(g, d)); workers <= 1 {
		body(0, sq)
	} else {
		tensor.ParallelRows(sq, workers, body)
	}
	return &Output{O: o, P: s}
}
