package attention

import (
	"fmt"
	"math"

	"llama4d/internal/tensor"
)

// Output holds the results of an attention forward pass for one head.
type Output struct {
	O *tensor.Tensor // [sq, d] attention output
	P *tensor.Tensor // [sq, sk] post-softmax probabilities (saved for backward)
}

// Forward computes masked scaled-dot-product attention naively. It is the
// oracle against which the flash-style kernel, CP attention, and ring
// attention are property-tested. qPos gives the global position of each
// query row; keys occupy global positions kOff..kOff+sk-1.
func Forward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Output {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	if len(qPos) != sq {
		panic(fmt.Sprintf("attention: %d qPos for %d query rows", len(qPos), sq))
	}
	if k.Cols() != d || v.Rows() != sk {
		panic(fmt.Sprintf("attention: shape mismatch q%v k%v v%v", q.Shape, k.Shape, v.Shape))
	}
	scale := float32(1 / math.Sqrt(float64(d)))
	s := tensor.MatMulT(q, k)
	neg := float32(math.Inf(-1))
	for i := 0; i < sq; i++ {
		row := s.Row(i)
		for j := 0; j < sk; j++ {
			if m.Allowed(qPos[i], kOff+j) {
				row[j] *= scale
			} else {
				row[j] = neg
			}
		}
	}
	tensor.SoftmaxRows(s)
	return &Output{O: tensor.MatMul(s, v), P: s}
}

// Backward computes gradients for Forward given the saved probabilities.
// Returns dQ, dK, dV. The mask needs no re-application: masked entries of P
// are exactly zero, which zeroes their contribution to every gradient.
func Backward(q, k, v, p, dO *tensor.Tensor) (dQ, dK, dV *tensor.Tensor) {
	d := q.Cols()
	scale := float32(1 / math.Sqrt(float64(d)))

	dV = tensor.TMatMul(p, dO)  // [sk, d]
	dP := tensor.MatMulT(dO, v) // [sq, sk]
	// dS = P ∘ (dP − rowsum(dP ∘ P))
	sq, sk := p.Rows(), p.Cols()
	dS := tensor.New(sq, sk)
	for i := 0; i < sq; i++ {
		pi, dpi, dsi := p.Row(i), dP.Row(i), dS.Row(i)
		var dot float32
		for j := range pi {
			dot += pi[j] * dpi[j]
		}
		for j := range pi {
			dsi[j] = pi[j] * (dpi[j] - dot)
		}
	}
	dQ = tensor.MatMul(dS, k).Scale(scale)
	dK = tensor.TMatMul(dS, q).Scale(scale)
	return dQ, dK, dV
}

// Partial is the result of attending a block of keys: an unnormalised output
// plus per-query-row softmax statistics (running max m and sum l), in the
// log-sum-exp form flash attention and ring attention use to merge partial
// results across blocks (the "scaling and rescaling" of §4).
type Partial struct {
	O *tensor.Tensor // [sq, d]; rows scaled by their block-local softmax
	M []float32      // per-row running max of masked logits
	L []float32      // per-row sum of exp(logit - M)
}

// PartialForward computes flash-style attention of q against one key block.
// Rows with no allowed keys get M = -Inf, L = 0, O = 0 and merge as neutral
// elements.
func PartialForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	s := tensor.MatMulT(q, k)
	out := &Partial{O: tensor.New(sq, d), M: make([]float32, sq), L: make([]float32, sq)}
	for i := 0; i < sq; i++ {
		row := s.Row(i)
		maxv := float32(math.Inf(-1))
		for j := 0; j < sk; j++ {
			if m.Allowed(qPos[i], kOff+j) {
				row[j] *= scale
				if row[j] > maxv {
					maxv = row[j]
				}
			} else {
				row[j] = float32(math.Inf(-1))
			}
		}
		out.M[i] = maxv
		if math.IsInf(float64(maxv), -1) {
			continue
		}
		oi := out.O.Row(i)
		var l float32
		for j := 0; j < sk; j++ {
			if math.IsInf(float64(row[j]), -1) {
				continue
			}
			e := float32(math.Exp(float64(row[j] - maxv)))
			l += e
			vj := v.Row(j)
			for c := 0; c < d; c++ {
				oi[c] += e * vj[c]
			}
		}
		out.L[i] = l
	}
	return out
}

// Merge combines two partials over disjoint key blocks into one partial over
// their union, using log-sum-exp rescaling. It is associative and
// commutative up to floating-point rounding.
func Merge(a, b *Partial) *Partial {
	sq, d := a.O.Rows(), a.O.Cols()
	out := &Partial{O: tensor.New(sq, d), M: make([]float32, sq), L: make([]float32, sq)}
	for i := 0; i < sq; i++ {
		ma, mb := a.M[i], b.M[i]
		m := ma
		if mb > m {
			m = mb
		}
		out.M[i] = m
		if math.IsInf(float64(m), -1) {
			continue
		}
		wa, wb := float32(0), float32(0)
		if !math.IsInf(float64(ma), -1) {
			wa = float32(math.Exp(float64(ma - m)))
		}
		if !math.IsInf(float64(mb), -1) {
			wb = float32(math.Exp(float64(mb - m)))
		}
		out.L[i] = wa*a.L[i] + wb*b.L[i]
		oa, ob, oo := a.O.Row(i), b.O.Row(i), out.O.Row(i)
		for c := 0; c < d; c++ {
			oo[c] = wa*oa[c] + wb*ob[c]
		}
	}
	return out
}

// Finalize normalises a partial into the attention output: O[i] /= L[i].
// Rows with L == 0 (no allowed keys) stay zero.
func Finalize(p *Partial) *tensor.Tensor {
	out := p.O.Clone()
	for i := 0; i < out.Rows(); i++ {
		l := p.L[i]
		if l == 0 {
			continue
		}
		inv := 1 / l
		oi := out.Row(i)
		for c := range oi {
			oi[c] *= inv
		}
	}
	return out
}

// FlashForward computes attention by streaming key blocks of size blockSize
// through PartialForward/Merge — numerically equivalent to Forward but with
// O(sq·d) working memory, the structure of Flash-Attention V2 that serves as
// the paper's single-GPU baseline (§7.2).
func FlashForward(q, k, v *tensor.Tensor, m Mask, qPos []int, blockSize int) *tensor.Tensor {
	sk := k.Rows()
	if blockSize <= 0 {
		blockSize = sk
	}
	var acc *Partial
	for off := 0; off < sk; off += blockSize {
		end := off + blockSize
		if end > sk {
			end = sk
		}
		p := PartialForward(q, k.RowSlice(off, end), v.RowSlice(off, end), m, qPos, off)
		if acc == nil {
			acc = p
		} else {
			acc = Merge(acc, p)
		}
	}
	if acc == nil {
		return tensor.New(q.Rows(), q.Cols())
	}
	return Finalize(acc)
}
