package attention

import (
	"fmt"
	"math"

	"llama4d/internal/tensor"
)

// Output holds the results of an attention forward pass for one head.
type Output struct {
	O *tensor.Tensor // [sq, d] attention output
	P *tensor.Tensor // [sq, sk] post-softmax probabilities (saved for backward)
}

// Forward computes masked scaled-dot-product attention. qPos gives the
// global position of each query row; keys occupy global positions
// kOff..kOff+sk-1.
//
// By default the mask-structured blocked engine runs (blocked.go): score
// tiles with no allowed pair are skipped in every sweep and fully-allowed
// tiles run without per-element mask checks — bitwise identical to the dense
// reference path (DenseForward), which SetBlocked(false) selects. The
// mask/softmax sweep is row-parallel above the tensor package's FLOP
// threshold: each query row is masked and normalised independently, so the
// split is bitwise invisible (the §6.2 determinism contract).
func Forward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Output {
	return ForwardRecorded(q, k, v, m, qPos, kOff, nil)
}

// ForwardRecorded is Forward with a per-rank census recorder: when the
// blocked engine runs, the call's tile grid is folded into rec (2 sweeps —
// scores and P·V). A nil rec records nothing; the dense path never records,
// matching the global Stats counters.
func ForwardRecorded(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int, rec *Recorder) *Output {
	checkShapes(q, k, v, qPos)
	if blockedEnabled {
		return blockedForward(q, k, v, m, qPos, kOff, rec)
	}
	return denseForward(q, k, v, m, qPos, kOff)
}

// DenseForward is the dense reference kernel: the full score matrix is
// materialised and swept with per-row masking regardless of mask structure.
// It is the oracle the blocked engine is property-tested against and the
// baseline the attention benchmarks compare with.
func DenseForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Output {
	checkShapes(q, k, v, qPos)
	return denseForward(q, k, v, m, qPos, kOff)
}

func checkShapes(q, k, v *tensor.Tensor, qPos []int) {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	if len(qPos) != sq {
		panic(fmt.Sprintf("attention: %d qPos for %d query rows", len(qPos), sq))
	}
	if k.Cols() != d || v.Rows() != sk {
		panic(fmt.Sprintf("attention: shape mismatch q%v k%v v%v", q.Shape, k.Shape, v.Shape))
	}
}

func denseForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Output {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	s := tensor.MatMulT(q, k)
	if workers := tensor.Workers(sq, sq*sk*d); workers <= 1 {
		maskedSoftmaxRows(s, m, qPos, kOff, scale, 0, sq)
	} else {
		tensor.ParallelRows(sq, workers, func(lo, hi int) {
			maskedSoftmaxRows(s, m, qPos, kOff, scale, lo, hi)
		})
	}
	return &Output{O: tensor.MatMul(s, v), P: s}
}

// maskedSoftmaxRows scales and softmaxes score rows [lo, hi) in place,
// sending disallowed positions to -Inf. Each worker hoists the mask into
// one reusable per-row []bool instead of an Allowed call per element.
func maskedSoftmaxRows(s *tensor.Tensor, m Mask, qPos []int, kOff int, scale float32, lo, hi int) {
	sk := s.Cols()
	allowed := make([]bool, sk)
	neg := float32(math.Inf(-1))
	for i := lo; i < hi; i++ {
		RowMask(m, qPos[i], kOff, allowed)
		row := s.Row(i)
		for j := 0; j < sk; j++ {
			if allowed[j] {
				row[j] *= scale
			} else {
				row[j] = neg
			}
		}
		tensor.SoftmaxRow(row)
	}
}

// Backward computes gradients for Forward given the saved probabilities.
// Returns dQ, dK, dV. The mask carries no new information for correctness —
// masked entries of P are exactly zero, which zeroes their contribution to
// every gradient — but it lets the blocked engine classify and skip empty
// tiles of the dP/dS sweeps instead of discovering the zeros value by value,
// and keeps the measured skipped-tile volume equal to the closed-form
// prediction (metrics/xval) rather than dependent on float underflow.
func Backward(q, k, v, p, dO *tensor.Tensor, m Mask, qPos []int, kOff int) (dQ, dK, dV *tensor.Tensor) {
	return BackwardRecorded(q, k, v, p, dO, m, qPos, kOff, nil)
}

// BackwardRecorded is Backward with a per-rank census recorder: when the
// blocked engine runs, the call's tile grid is folded into rec (4 sweeps —
// dV, dP, dQ, dK). A nil rec records nothing.
func BackwardRecorded(q, k, v, p, dO *tensor.Tensor, m Mask, qPos []int, kOff int, rec *Recorder) (dQ, dK, dV *tensor.Tensor) {
	if blockedEnabled {
		return blockedBackward(q, k, v, p, dO, m, qPos, kOff, rec)
	}
	return DenseBackward(q, k, v, p, dO)
}

// DenseBackward is the dense reference backward pass: every gradient product
// sweeps the full score plane, relying only on the exact zeros of masked
// probabilities. Oracle and benchmark baseline for the blocked engine.
func DenseBackward(q, k, v, p, dO *tensor.Tensor) (dQ, dK, dV *tensor.Tensor) {
	d := q.Cols()
	scale := float32(1 / math.Sqrt(float64(d)))

	dV = tensor.TMatMul(p, dO)  // [sk, d]
	dP := tensor.MatMulT(dO, v) // [sq, sk]
	// dS = P ∘ (dP − rowsum(dP ∘ P))
	sq, sk := p.Rows(), p.Cols()
	dS := tensor.GetUninit(sq, sk)
	if workers := tensor.Workers(sq, 2*sq*sk); workers <= 1 {
		softmaxBackwardRows(dS, p, dP, 0, sq)
	} else {
		tensor.ParallelRows(sq, workers, func(lo, hi int) {
			softmaxBackwardRows(dS, p, dP, lo, hi)
		})
	}
	tensor.Put(dP)
	dQ = tensor.MatMul(dS, k).Scale(scale)
	dK = tensor.TMatMul(dS, q).Scale(scale)
	tensor.Put(dS)
	return dQ, dK, dV
}

// softmaxBackwardRows writes dS = P ∘ (dP − rowsum(dP ∘ P)) for rows
// [lo, hi). Row-independent, so any ParallelRows split is bitwise invisible.
func softmaxBackwardRows(dS, p, dP *tensor.Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		pi, dpi, dsi := p.Row(i), dP.Row(i), dS.Row(i)
		var dot float32
		for j := range pi {
			dot += pi[j] * dpi[j]
		}
		for j := range pi {
			dsi[j] = pi[j] * (dpi[j] - dot)
		}
	}
}

// Partial is the result of attending a block of keys: an unnormalised output
// plus per-query-row softmax statistics (running max m and sum l), in the
// log-sum-exp form flash attention and ring attention use to merge partial
// results across blocks (the "scaling and rescaling" of §4).
type Partial struct {
	O *tensor.Tensor // [sq, d]; rows scaled by their block-local softmax
	M []float32      // per-row running max of masked logits
	L []float32      // per-row sum of exp(logit - M)
}

// PartialForward computes flash-style attention of q against one key block.
// Rows with no allowed keys get M = -Inf, L = 0, O = 0 and merge as neutral
// elements.
func PartialForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	return PartialForwardInto(nil, q, k, v, m, qPos, kOff)
}

// PartialForwardInto is the buffer-reusing variant of PartialForward: a
// non-nil out (of matching query count and head dim) is overwritten and
// returned, recycling its O tensor and M/L slices — one key block after
// another can stream through the same scratch Partial (ring attention). A
// nil out allocates a fresh Partial from the tensor pool.
//
// Like Forward it runs the blocked engine unless SetBlocked(false); the
// per-row online-softmax sweep is row-parallel above the FLOP threshold and
// rows are independent, so neither the worker split nor the tile skipping
// ever changes bits.
func PartialForwardInto(out *Partial, q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	checkShapes(q, k, v, qPos)
	if blockedEnabled {
		return blockedPartialInto(out, q, k, v, m, qPos, kOff)
	}
	return DensePartialForwardInto(out, q, k, v, m, qPos, kOff)
}

// DensePartialForwardInto is the dense reference partial kernel (oracle and
// benchmark baseline for the blocked one).
func DensePartialForwardInto(out *Partial, q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	checkShapes(q, k, v, qPos)
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	s := tensor.MatMulT(q, k)
	out = preparePartial(out, sq, d)
	if workers := tensor.Workers(sq, sq*sk*d); workers <= 1 {
		partialSweepRows(out, s, v, m, qPos, kOff, scale, 0, sq)
	} else {
		tensor.ParallelRows(sq, workers, func(lo, hi int) {
			partialSweepRows(out, s, v, m, qPos, kOff, scale, lo, hi)
		})
	}
	tensor.Put(s)
	return out
}

// preparePartial returns out ready to accumulate an [sq, d] partial: a nil
// out allocates from the tensor pool, an existing one has its O zeroed (or
// reallocated on shape change) and its M/L slices resized.
func preparePartial(out *Partial, sq, d int) *Partial {
	if out == nil {
		return &Partial{O: tensor.Get(sq, d), M: make([]float32, sq), L: make([]float32, sq)}
	}
	if out.O == nil || out.O.Rows() != sq || out.O.Cols() != d {
		tensor.Put(out.O)
		out.O = tensor.Get(sq, d)
	} else {
		out.O.Zero()
	}
	if cap(out.M) < sq {
		out.M = make([]float32, sq)
		out.L = make([]float32, sq)
	}
	out.M = out.M[:sq]
	out.L = out.L[:sq]
	return out
}

// partialSweepRows runs the online-softmax accumulation for query rows
// [lo, hi): mask, scale, row max, exp-weights into out.O with per-row M/L
// statistics. Rows are independent, so worker splits never change bits.
func partialSweepRows(out *Partial, s, v *tensor.Tensor, m Mask, qPos []int, kOff int, scale float32, lo, hi int) {
	sk, d := s.Cols(), v.Cols()
	allowed := make([]bool, sk)
	negInf := float32(math.Inf(-1))
	for i := lo; i < hi; i++ {
		RowMask(m, qPos[i], kOff, allowed)
		row := s.Row(i)
		maxv := negInf
		for j := 0; j < sk; j++ {
			if allowed[j] {
				row[j] *= scale
				if row[j] > maxv {
					maxv = row[j]
				}
			}
		}
		out.M[i] = maxv
		out.L[i] = 0
		if math.IsInf(float64(maxv), -1) {
			continue
		}
		oi := out.O.Row(i)
		var l float32
		for j := 0; j < sk; j++ {
			if !allowed[j] {
				continue
			}
			e := float32(math.Exp(float64(row[j] - maxv)))
			l += e
			vj := v.Row(j)
			for c := 0; c < d; c++ {
				oi[c] += e * vj[c]
			}
		}
		out.L[i] = l
	}
}

// ReleasePartial retires p's output buffer into the tensor pool. The caller
// must hold no references to p.O afterwards.
func ReleasePartial(p *Partial) {
	if p == nil {
		return
	}
	tensor.Put(p.O)
	p.O = nil
}

// Merge combines two partials over disjoint key blocks into one partial over
// their union, using log-sum-exp rescaling. It is associative and
// commutative up to floating-point rounding.
func Merge(a, b *Partial) *Partial {
	sq, d := a.O.Rows(), a.O.Cols()
	out := &Partial{O: tensor.Get(sq, d), M: make([]float32, sq), L: make([]float32, sq)}
	mergeRows(out, a, b)
	return out
}

// MergeInPlace merges b into acc (acc ← Merge(acc, b)) without allocating:
// the in-place variant block-streaming merges use so every block merge stops
// costing one [sq, d] tensor. Bitwise identical to Merge because each output
// row depends only on the same row of the two inputs.
func MergeInPlace(acc, b *Partial) {
	mergeRows(acc, acc, b)
}

func mergeRows(out, a, b *Partial) {
	sq, d := a.O.Rows(), a.O.Cols()
	for i := 0; i < sq; i++ {
		ma, mb := a.M[i], b.M[i]
		m := ma
		if mb > m {
			m = mb
		}
		out.M[i] = m
		if math.IsInf(float64(m), -1) {
			out.L[i] = 0
			if out != a {
				oi := out.O.Row(i)
				for c := 0; c < d; c++ {
					oi[c] = 0
				}
			}
			continue
		}
		wa, wb := float32(0), float32(0)
		if !math.IsInf(float64(ma), -1) {
			wa = float32(math.Exp(float64(ma - m)))
		}
		if !math.IsInf(float64(mb), -1) {
			wb = float32(math.Exp(float64(mb - m)))
		}
		out.L[i] = wa*a.L[i] + wb*b.L[i]
		oa, ob, oo := a.O.Row(i), b.O.Row(i), out.O.Row(i)
		for c := 0; c < d; c++ {
			oo[c] = wa*oa[c] + wb*ob[c]
		}
	}
}

// Finalize normalises a partial into a FRESH attention output: O[i] /= L[i].
// Rows with L == 0 (no allowed keys) stay zero. The partial is unchanged;
// use FinalizeInPlace when the partial's buffer can be consumed.
func Finalize(p *Partial) *tensor.Tensor {
	out := p.O.Clone()
	finalizeRows(out, p.L)
	return out
}

// FinalizeInPlace normalises the partial's own output buffer and returns it,
// consuming the partial: p.O aliases the result and the partial must not be
// merged afterwards. This removes the [sq, d] clone per block merge that
// Finalize pays.
func FinalizeInPlace(p *Partial) *tensor.Tensor {
	out := p.O
	p.O = nil
	finalizeRows(out, p.L)
	return out
}

func finalizeRows(out *tensor.Tensor, l []float32) {
	for i := 0; i < out.Rows(); i++ {
		if l[i] == 0 {
			continue
		}
		inv := 1 / l[i]
		oi := out.Row(i)
		for c := range oi {
			oi[c] *= inv
		}
	}
}
