package attention

// Recorder accumulates the blocked engine's per-call census for one consumer
// — in practice one cluster rank, so the workload-balance planner and the
// metrics registry can attribute effective attention work to individual ranks
// instead of only to the world-global atomic counters (StatsSnapshot).
//
// A Recorder is NOT safe for concurrent use: each rank goroutine owns its
// own, and the registry reads it only after the step's goroutines have joined
// (RunSPMD's join publishes the writes). A nil *Recorder is a valid no-op
// receiver, so un-instrumented call sites pass nil at zero cost.
//
// Recording mirrors the global counters exactly: it fires only on the blocked
// engine paths, once per Forward/Backward invocation, with the same Grid the
// kernels classify with — so a rank's Stats sum equals the StatsSnapshot
// delta whenever every recorded call site belongs to that rank.
type Recorder struct {
	// Stats is the unscaled census sum: one Summary() per recorded call.
	Stats Stats
	// EffFLOPs / NominalFLOPs count the attention score-plane matmul work in
	// FLOPs across all recorded sweeps (forward = 2 sweeps, backward = 4):
	// nominal is the dense 2·d·sq·sk per sweep, effective subtracts the
	// empty-tile pairs the engine provably skips. These are the quantities
	// the balance planner equalises across ranks.
	EffFLOPs     int64
	NominalFLOPs int64
}

// Reset zeroes the recorder (BeginStep).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	*r = Recorder{}
}

// Record folds one engine invocation over grid g with the given number of
// matmul-shaped sweeps of inner dimension d. Exported so the closed-form
// predictor (internal/metrics/xval) can build the modeled counterpart with
// the same arithmetic.
func (r *Recorder) Record(g *Grid, sweeps, d int) {
	if r == nil {
		return
	}
	r.Stats = r.Stats.Add(g.Summary())
	per := 2 * int64(d) * int64(sweeps)
	r.NominalFLOPs += per * g.TotalPairs()
	r.EffFLOPs += per * (g.TotalPairs() - g.EmptyPairs)
}

// Add folds another recorder's totals into r (modeled-side aggregation).
func (r *Recorder) Add(o *Recorder) {
	if r == nil || o == nil {
		return
	}
	r.Stats = r.Stats.Add(o.Stats)
	r.EffFLOPs += o.EffFLOPs
	r.NominalFLOPs += o.NominalFLOPs
}
