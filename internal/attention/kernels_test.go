package attention

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"llama4d/internal/tensor"
)

// oddMask is a Mask the RowMask type switch does not know, forcing the
// per-element fallback path.
type oddMask struct{}

func (oddMask) Allowed(q, k int) bool { return (q+k)%2 == 0 }

// TestRowMaskMatchesAllowed checks every RowMask fast path against the
// per-element Allowed oracle, including negative query positions (ring
// attention probes rows that own no keys) and nonzero key offsets.
func TestRowMaskMatchesAllowed(t *testing.T) {
	doc := Document{DocID: DocIDsFromLengths([]int{3, 5, 2, 6}, 16)}
	masks := map[string]Mask{
		"full":     Full{},
		"causal":   Causal{},
		"document": doc,
		"custom":   oddMask{},
	}
	for name, m := range masks {
		for _, kOff := range []int{0, 3, 8, 15} {
			for q := -2; q < 16; q++ {
				if name == "document" && q < 0 {
					// Document.Allowed would index DocID[q]; RowMask's guard
					// handles the all-masked row without touching DocID.
					sk := 16 - kOff
					dst := make([]bool, sk)
					for j := range dst {
						dst[j] = true // ensure RowMask actually clears
					}
					RowMask(m, q, kOff, dst)
					for j, v := range dst {
						if v {
							t.Fatalf("%s q=%d kOff=%d: key %d allowed for negative query", name, q, kOff, j)
						}
					}
					continue
				}
				sk := 16 - kOff
				dst := make([]bool, sk)
				RowMask(m, q, kOff, dst)
				for j := 0; j < sk; j++ {
					if want := m.Allowed(q, kOff+j); dst[j] != want {
						t.Fatalf("%s q=%d kOff=%d j=%d: RowMask=%v Allowed=%v", name, q, kOff, j, dst[j], want)
					}
				}
			}
		}
	}
}

// TestForwardRowSliceBitwise proves the row-parallel Forward split never
// changes bits: with GOMAXPROCS raised and a shape above the FLOP threshold
// the full call runs parallel, while per-slice calls on a few query rows run
// serial — and every row must agree bit for bit, because rows are computed
// independently of the chunking.
func TestForwardRowSliceBitwise(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const sq, sk, d = 320, 256, 64 // 320·256·64 > 2^22: parallel dispatch
	q, k, v := randQKV(101, sq, sk, d)
	docs := Document{DocID: DocIDsFromLengths([]int{100, 77, 200}, 512)}
	for name, m := range map[string]Mask{"causal": Causal{}, "document": docs} {
		qPos := Iota(sq)
		full := Forward(q, k, v, m, qPos, 0)
		for lo := 0; lo < sq; lo += 63 { // uneven slices straddle chunk bounds
			hi := lo + 63
			if hi > sq {
				hi = sq
			}
			part := Forward(q.RowSlice(lo, hi), k, v, m, qPos[lo:hi], 0)
			if !tensor.BitwiseEqual(part.O, full.O.RowSlice(lo, hi)) {
				t.Fatalf("%s rows [%d,%d): parallel O differs from serial slice", name, lo, hi)
			}
			if !tensor.BitwiseEqual(part.P, full.P.RowSlice(lo, hi)) {
				t.Fatalf("%s rows [%d,%d): parallel P differs from serial slice", name, lo, hi)
			}
		}
	}
}

// TestPartialForwardRowSliceBitwise is the same split-invariance property for
// the online-softmax partial kernel.
func TestPartialForwardRowSliceBitwise(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const sq, sk, d = 320, 256, 64
	q, k, v := randQKV(202, sq, sk, d)
	m := Causal{}
	qPos := Iota(sq)
	full := PartialForward(q, k, v, m, qPos, 0)
	for lo := 0; lo < sq; lo += 63 {
		hi := lo + 63
		if hi > sq {
			hi = sq
		}
		part := PartialForward(q.RowSlice(lo, hi), k, v, m, qPos[lo:hi], 0)
		if !tensor.BitwiseEqual(part.O, full.O.RowSlice(lo, hi)) {
			t.Fatalf("rows [%d,%d): parallel partial O differs from serial slice", lo, hi)
		}
		for i := lo; i < hi; i++ {
			if part.M[i-lo] != full.M[i] || part.L[i-lo] != full.L[i] {
				t.Fatalf("row %d: stats (M,L)=(%v,%v) vs serial (%v,%v)",
					i, full.M[i], full.L[i], part.M[i-lo], part.L[i-lo])
			}
		}
	}
}

// TestPartialForwardIntoReuseBitwise streams mismatched-then-matching shapes
// through one scratch Partial and checks the reuse path is indistinguishable
// from fresh allocations.
func TestPartialForwardIntoReuseBitwise(t *testing.T) {
	m := Causal{}
	q1, k1, v1 := randQKV(303, 24, 16, 8)
	q2, k2, v2 := randQKV(304, 10, 12, 8) // different sq and sk

	want1 := PartialForward(q1, k1, v1, m, Iota(24), 0)
	want2 := PartialForward(q2, k2, v2, m, Iota(10), 0)

	scratch := PartialForwardInto(nil, q1, k1, v1, m, Iota(24), 0)
	checkPartialEqual(t, "fresh", scratch, want1)
	scratch = PartialForwardInto(scratch, q2, k2, v2, m, Iota(10), 0) // shrink
	checkPartialEqual(t, "shrunk reuse", scratch, want2)
	scratch = PartialForwardInto(scratch, q1, k1, v1, m, Iota(24), 0) // regrow
	checkPartialEqual(t, "regrown reuse", scratch, want1)
	ReleasePartial(scratch)
}

func checkPartialEqual(t *testing.T, label string, got, want *Partial) {
	t.Helper()
	if !tensor.BitwiseEqual(got.O, want.O) {
		t.Fatalf("%s: O differs", label)
	}
	for i := range want.M {
		if got.M[i] != want.M[i] || got.L[i] != want.L[i] {
			t.Fatalf("%s: stats differ at row %d", label, i)
		}
	}
}

// TestMergeInPlaceMatchesMerge covers the allocation-free merge against the
// fresh-output version, including rows that are fully masked (-Inf max) in
// one or both inputs — the case whose zero-write MergeInPlace elides.
func TestMergeInPlaceMatchesMerge(t *testing.T) {
	const sq, d = 16, 8
	rng := rand.New(rand.NewSource(404))
	mkPartial := func(maskedRows ...int) *Partial {
		p := &Partial{
			O: tensor.RandN(rng, 1, sq, d),
			M: make([]float32, sq),
			L: make([]float32, sq),
		}
		for i := 0; i < sq; i++ {
			p.M[i] = rng.Float32() * 3
			p.L[i] = rng.Float32() + 0.5
		}
		for _, i := range maskedRows {
			p.M[i] = float32(math.Inf(-1))
			p.L[i] = 0
			row := p.O.Row(i)
			for c := range row {
				row[c] = 0 // PartialForward leaves masked rows zero
			}
		}
		return p
	}
	a := mkPartial(2, 5, 9)
	b := mkPartial(5, 11)

	want := Merge(a, b)
	acc := &Partial{O: a.O.Clone(), M: append([]float32(nil), a.M...), L: append([]float32(nil), a.L...)}
	MergeInPlace(acc, b)
	checkPartialEqual(t, "MergeInPlace", acc, want)
}

func TestFinalizeInPlaceMatchesFinalize(t *testing.T) {
	q, k, v := randQKV(505, 12, 12, 8)
	m := Causal{}
	p1 := PartialForward(q, k, v, m, Iota(12), 0)
	want := Finalize(p1)
	got := FinalizeInPlace(p1)
	if !tensor.BitwiseEqual(got, want) {
		t.Fatal("FinalizeInPlace differs from Finalize")
	}
	if p1.O != nil {
		t.Fatal("FinalizeInPlace must consume the partial's buffer")
	}
}

// TestStreamedForwardParallelBitwise checks the streamed block-merge path
// and the blocked Forward engine stay deterministic when their inner kernels
// dispatch to goroutines: the same inputs at serial (GOMAXPROCS=1) and
// parallel (GOMAXPROCS=4) settings must produce identical bits for every
// block size.
func TestStreamedForwardParallelBitwise(t *testing.T) {
	const sq, sk, d = 320, 320, 64
	q, k, v := randQKV(606, sq, sk, d)
	m := Document{DocID: DocIDsFromLengths([]int{130, 90, 100}, sk)}
	qPos := Iota(sq)

	prev := runtime.GOMAXPROCS(1)
	serial := streamedForward(q, k, v, m, qPos, 0)
	serialBlocked := streamedForward(q, k, v, m, qPos, 80)
	serialFwd := Forward(q, k, v, m, qPos, 0)
	runtime.GOMAXPROCS(4)
	parallel := streamedForward(q, k, v, m, qPos, 0)
	parallelBlocked := streamedForward(q, k, v, m, qPos, 80)
	parallelFwd := Forward(q, k, v, m, qPos, 0)
	runtime.GOMAXPROCS(prev)

	if !tensor.BitwiseEqual(serial, parallel) {
		t.Fatal("streamedForward (single block) differs across GOMAXPROCS")
	}
	if !tensor.BitwiseEqual(serialBlocked, parallelBlocked) {
		t.Fatal("streamedForward (blocked) differs across GOMAXPROCS")
	}
	if !tensor.BitwiseEqual(serialFwd.O, parallelFwd.O) || !tensor.BitwiseEqual(serialFwd.P, parallelFwd.P) {
		t.Fatal("blocked Forward differs across GOMAXPROCS")
	}
}
