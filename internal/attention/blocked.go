package attention

import (
	"fmt"
	"math"
	"sync/atomic"

	"llama4d/internal/tensor"
)

// The blocked engine tiles the [sq, sk] score plane into TileRows×TileCols
// blocks and classifies each tile against the mask before any arithmetic
// runs: empty tiles (no allowed pair) are skipped in every sweep — scores,
// softmax, P·V, and all four backward matmuls — full tiles (every pair
// allowed) run without per-element mask checks, and partial tiles keep the
// dense per-element path. Classification uses only causalCut-style interval
// arithmetic plus the DocStarts index, so it costs O(sq + tiles) per call.
//
// Skipping is bitwise-neutral by the §6.2 contract: the dense kernels give
// masked positions probability exactly +0 (exp(-Inf) under SoftmaxRow) and
// skip zero-valued terms in every accumulation, and IEEE-754 addition
// starting from +0 can never produce -0, so dropping a tile whose every
// contribution is a signed zero leaves all downstream sums bit-identical.
// Like the dense zero-skips, the equivalence assumes finite scores (an ±Inf
// logit would propagate NaN through dense rows the blocked path skips).

// defaultTileRows/Cols match flash-attention production practice: blocks
// large enough to amortise classification, small enough that document
// boundaries at realistic lengths (§ context parallelism) carve out empty
// tiles.
const (
	defaultTileRows = 64
	defaultTileCols = 64
)

// Engine configuration. Plain variables, not atomics: they are set during
// single-goroutine setup (before a cluster's rank goroutines are spawned —
// goroutine creation publishes the write) and read-only while kernels run.
var (
	blockedEnabled = true
	tileRows       = defaultTileRows
	tileCols       = defaultTileCols
)

// SetBlocked toggles the blocked engine for Forward, Backward and
// PartialForwardInto; off means the dense reference kernels run. Returns the
// previous setting. Blocked and dense are bitwise identical, so the toggle
// exists for benchmarking and property tests, not correctness.
func SetBlocked(on bool) bool {
	prev := blockedEnabled
	blockedEnabled = on
	return prev
}

// BlockedEnabled reports whether the blocked engine is active.
func BlockedEnabled() bool { return blockedEnabled }

// SetTiling sets the blocked engine's tile geometry and returns the previous
// one. Small tiles resolve finer mask structure (more empty tiles) at higher
// classification overhead; the tiling never changes results, only which work
// is provably skippable.
func SetTiling(rows, cols int) (prevRows, prevCols int) {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("attention: invalid tiling %dx%d", rows, cols))
	}
	prevRows, prevCols = tileRows, tileCols
	tileRows, tileCols = rows, cols
	return prevRows, prevCols
}

// Tiling returns the blocked engine's current tile geometry.
func Tiling() (rows, cols int) { return tileRows, tileCols }

// TileKind classifies one score tile against the mask.
type TileKind uint8

const (
	// TileEmpty tiles contain no allowed pair and are skipped entirely.
	TileEmpty TileKind = iota
	// TilePartial tiles mix allowed and masked pairs: computed with the
	// dense per-element mask path.
	TilePartial
	// TileFull tiles are entirely allowed: computed with no mask checks.
	TileFull
)

// Grid is the tile classification of one [sq, sk] score plane: the kind of
// every tile plus the pair accounting the effective-FLOP counter and the
// sparsity stats are built from. The same grid drives the measured kernels,
// the closed-form xval prediction, and the simulator's sparsity fields — one
// classifier, three consumers.
type Grid struct {
	Sq, Sk             int
	TileRows, TileCols int
	NRows, NCols       int
	Kinds              []TileKind // NRows×NCols, row-major

	// AllowedPairs counts mask-allowed (q, k) pairs exactly; EmptyPairs
	// counts the pairs covered by skipped tiles. Partial-tile masked pairs
	// are in neither: they are swept (and so cost effective FLOPs) even
	// though the mask zeroes them.
	AllowedPairs int64
	EmptyPairs   int64

	FullTiles, PartialTiles, EmptyTiles int64
}

// Kind returns the classification of tile (rt, ct).
func (g *Grid) Kind(rt, ct int) TileKind { return g.Kinds[rt*g.NCols+ct] }

// TotalPairs returns sq·sk, the dense pair count.
func (g *Grid) TotalPairs() int64 { return int64(g.Sq) * int64(g.Sk) }

// rowBand returns the query-row range [r0, r1) of row-tile rt.
func (g *Grid) rowBand(rt int) (r0, r1 int) {
	r0 = rt * g.TileRows
	return r0, min(r0+g.TileRows, g.Sq)
}

// colBand returns the key-column range [c0, c1) of col-tile ct.
func (g *Grid) colBand(ct int) (c0, c1 int) {
	c0 = ct * g.TileCols
	return c0, min(c0+g.TileCols, g.Sk)
}

// Summary returns the grid's pair/tile accounting as a one-call Stats value.
func (g *Grid) Summary() Stats {
	return Stats{
		Calls:        1,
		TotalPairs:   g.TotalPairs(),
		AllowedPairs: g.AllowedPairs,
		EmptyPairs:   g.EmptyPairs,
		FullTiles:    g.FullTiles,
		PartialTiles: g.PartialTiles,
		EmptyTiles:   g.EmptyTiles,
	}
}

func newGrid(sq, sk int) *Grid {
	g := &Grid{
		Sq: sq, Sk: sk,
		TileRows: tileRows, TileCols: tileCols,
		NRows: (sq + tileRows - 1) / tileRows,
		NCols: (sk + tileCols - 1) / tileCols,
	}
	g.Kinds = make([]TileKind, g.NRows*g.NCols)
	return g
}

// BuildGrid classifies the score tiles of queries at global positions qPos
// against the key block at kOff..kOff+sk-1 under mask m. The built-in mask
// types classify via interval arithmetic (causalCut bounds plus the
// DocStarts index); unknown mask implementations conservatively mark every
// tile partial, which degenerates to the dense per-element path — identical
// semantics by construction.
func BuildGrid(m Mask, qPos []int, kOff, sk int) *Grid {
	switch mm := m.(type) {
	case Full:
		g := newGrid(len(qPos), sk)
		for i := range g.Kinds {
			g.Kinds[i] = TileFull
		}
		g.FullTiles = int64(len(g.Kinds))
		g.AllowedPairs = g.TotalPairs()
		return g
	case Causal:
		return BuildGridFromStarts(qPos, nil, kOff, sk)
	case Document:
		return BuildGridFromStarts(qPos, DocStarts(mm.DocID), kOff, sk)
	default:
		g := newGrid(len(qPos), sk)
		for i := range g.Kinds {
			g.Kinds[i] = TilePartial
		}
		g.PartialTiles = int64(len(g.Kinds))
		for _, q := range qPos {
			for j := 0; j < sk; j++ {
				if m.Allowed(q, kOff+j) {
					g.AllowedPairs++
				}
			}
		}
		return g
	}
}

// BuildGridFromStarts classifies tiles for the document mask expressed as a
// DocStarts interval index: query q attends exactly keys [starts[q], q]. A
// nil starts means plain causal attention (every document starts at 0).
// Negative query positions (ring-attention probes) attend nothing under a
// document mask, matching RowMask. This is the entry point shared with the
// simulator (internal/sim/engine), which models sparsity from the same
// docStarts vectors the measured kernels classify with.
func BuildGridFromStarts(qPos []int, starts []int, kOff, sk int) *Grid {
	sq := len(qPos)
	g := newGrid(sq, sk)
	for rt := 0; rt < g.NRows; rt++ {
		r0, r1 := g.rowBand(rt)
		minQ, maxQ := math.MaxInt, math.MinInt
		minStart, maxStart := math.MaxInt, math.MinInt
		allValid := true
		for i := r0; i < r1; i++ {
			q := qPos[i]
			minQ = min(minQ, q)
			maxQ = max(maxQ, q)
			if starts != nil {
				if q < 0 {
					allValid = false
					continue
				}
				minStart = min(minStart, starts[q])
				maxStart = max(maxStart, starts[q])
			}
		}
		anyValid := starts == nil || minStart != math.MaxInt
		for ct := 0; ct < g.NCols; ct++ {
			c0, c1 := g.colBand(ct)
			k0, k1 := kOff+c0, kOff+c1-1 // inclusive global key range
			var kind TileKind
			switch {
			case k0 > maxQ, !anyValid, starts != nil && k1 < minStart:
				kind = TileEmpty
			case k1 <= minQ && (starts == nil || (allValid && k0 >= maxStart)):
				kind = TileFull
			default:
				kind = TilePartial
			}
			g.Kinds[rt*g.NCols+ct] = kind
			area := int64(r1-r0) * int64(c1-c0)
			switch kind {
			case TileEmpty:
				g.EmptyTiles++
				g.EmptyPairs += area
			case TilePartial:
				g.PartialTiles++
			default:
				g.FullTiles++
			}
		}
		// Exact allowed-pair count, mirroring RowMask semantics per row.
		for i := r0; i < r1; i++ {
			q := qPos[i]
			cut := causalCut(q, kOff, sk)
			if starts == nil {
				g.AllowedPairs += int64(cut)
				continue
			}
			if q < 0 || cut == 0 {
				continue
			}
			lo := max(starts[q]-kOff, 0)
			if cut > lo {
				g.AllowedPairs += int64(cut - lo)
			}
		}
	}
	return g
}

// Stats is the blocked engine's cumulative work accounting: one Calls
// increment plus the underlying grid's pair/tile counts per engine
// invocation (Forward, Backward, or PartialForwardInto). Like the tensor
// FLOP counters it is world-global; internal/metrics attributes it to steps
// via StatsSnapshot deltas.
type Stats struct {
	Calls        int64 `json:"calls"`
	TotalPairs   int64 `json:"total_pairs"`
	AllowedPairs int64 `json:"allowed_pairs"`
	EmptyPairs   int64 `json:"empty_pairs"`
	FullTiles    int64 `json:"full_tiles"`
	PartialTiles int64 `json:"partial_tiles"`
	EmptyTiles   int64 `json:"empty_tiles"`
}

// Sub returns s - prev, field-wise: the delta between two snapshots.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Calls:        s.Calls - prev.Calls,
		TotalPairs:   s.TotalPairs - prev.TotalPairs,
		AllowedPairs: s.AllowedPairs - prev.AllowedPairs,
		EmptyPairs:   s.EmptyPairs - prev.EmptyPairs,
		FullTiles:    s.FullTiles - prev.FullTiles,
		PartialTiles: s.PartialTiles - prev.PartialTiles,
		EmptyTiles:   s.EmptyTiles - prev.EmptyTiles,
	}
}

// Add returns s + o, field-wise.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Calls:        s.Calls + o.Calls,
		TotalPairs:   s.TotalPairs + o.TotalPairs,
		AllowedPairs: s.AllowedPairs + o.AllowedPairs,
		EmptyPairs:   s.EmptyPairs + o.EmptyPairs,
		FullTiles:    s.FullTiles + o.FullTiles,
		PartialTiles: s.PartialTiles + o.PartialTiles,
		EmptyTiles:   s.EmptyTiles + o.EmptyTiles,
	}
}

// Scale returns s with every counter multiplied by n (closed-form
// prediction helper: one grid's stats times an invocation count).
func (s Stats) Scale(n int64) Stats {
	return Stats{
		Calls:        s.Calls * n,
		TotalPairs:   s.TotalPairs * n,
		AllowedPairs: s.AllowedPairs * n,
		EmptyPairs:   s.EmptyPairs * n,
		FullTiles:    s.FullTiles * n,
		PartialTiles: s.PartialTiles * n,
		EmptyTiles:   s.EmptyTiles * n,
	}
}

var (
	statCalls, statTotalPairs, statAllowedPairs, statEmptyPairs atomic.Int64
	statFullTiles, statPartialTiles, statEmptyTiles             atomic.Int64
)

// StatsSnapshot returns the cumulative blocked-engine stats since process
// start (or the last ResetStats).
func StatsSnapshot() Stats {
	return Stats{
		Calls:        statCalls.Load(),
		TotalPairs:   statTotalPairs.Load(),
		AllowedPairs: statAllowedPairs.Load(),
		EmptyPairs:   statEmptyPairs.Load(),
		FullTiles:    statFullTiles.Load(),
		PartialTiles: statPartialTiles.Load(),
		EmptyTiles:   statEmptyTiles.Load(),
	}
}

// ResetStats zeroes the cumulative blocked-engine stats.
func ResetStats() {
	statCalls.Store(0)
	statTotalPairs.Store(0)
	statAllowedPairs.Store(0)
	statEmptyPairs.Store(0)
	statFullTiles.Store(0)
	statPartialTiles.Store(0)
	statEmptyTiles.Store(0)
}

func recordGrid(g *Grid) {
	statCalls.Add(1)
	statTotalPairs.Add(g.TotalPairs())
	statAllowedPairs.Add(g.AllowedPairs)
	statEmptyPairs.Add(g.EmptyPairs)
	statFullTiles.Add(g.FullTiles)
	statPartialTiles.Add(g.PartialTiles)
	statEmptyTiles.Add(g.EmptyTiles)
}

// effFLOPs returns the effective FLOP count of one matmul-shaped sweep over
// the grid with inner dimension d: 2·d per swept pair, empty tiles skipped.
func effFLOPs(g *Grid, d int) int64 {
	return 2 * int64(d) * (g.TotalPairs() - g.EmptyPairs)
}

// sweptWork returns the per-sweep FMA count used for worker sizing.
func sweptWork(g *Grid, d int) int {
	return int((g.TotalPairs() - g.EmptyPairs) * int64(d))
}

// blockedForward is the blocked engine behind Forward. One row-parallel pass
// fuses scores, masked softmax and P·V per query row — each stage touches
// only non-empty tiles, and every accumulation preserves the dense kernels'
// ordering and zero-skips, so the result is bitwise identical to
// DenseForward.
func blockedForward(q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int, rec *Recorder) *Output {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	g := BuildGrid(m, qPos, kOff, sk)
	recordGrid(g)
	rec.Record(g, 2, d)
	eff := effFLOPs(g, d)
	tensor.CountMatMulFLOPs(sq, d, sk, eff) // scores q@kᵀ
	tensor.CountMatMulFLOPs(sq, sk, d, eff) // output p@v
	s := tensor.Get(sq, sk)                 // zeroed: empty-tile probabilities are exact +0
	o := tensor.Get(sq, d)
	body := func(lo, hi int) {
		blockedScoreRows(s, q, k, g, lo, hi)
		blockedSoftmaxRows(s, m, qPos, kOff, g, scale, lo, hi)
		blockedPVRows(o, s, v, g, lo, hi)
	}
	if workers := tensor.Workers(sq, 2*sweptWork(g, d)); workers <= 1 {
		body(0, sq)
	} else {
		tensor.ParallelRows(sq, workers, body)
	}
	return &Output{O: o, P: s}
}

// blockedScoreRows computes s[i][j] = q[i]·k[j] for query rows [lo, hi) at
// every non-empty tile. Each element is one running sum over the head dim in
// increasing order — the same rounding sequence as the dense MatMulT kernel.
// Empty-tile entries are left untouched. The loop nest is tile-outer,
// row-inner so one tile's key slab stays cache-resident across the row band
// (the dense kernel's tileJ blocking); nesting order never changes any
// element's reduction sequence, so it is bitwise invisible.
func blockedScoreRows(s, q, k *tensor.Tensor, g *Grid, lo, hi int) {
	d := q.Cols()
	n := s.Cols()
	sd, qd, kd := s.Data, q.Data, k.Data
	for rt := lo / g.TileRows; rt < g.NRows && rt*g.TileRows < hi; rt++ {
		r0, r1 := g.rowBand(rt)
		r0, r1 = max(r0, lo), min(r1, hi)
		for ct := 0; ct < g.NCols; ct++ {
			if g.Kind(rt, ct) == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for i := r0; i < r1; i++ {
				qi := qd[i*d : (i+1)*d]
				si := sd[i*n : (i+1)*n]
				j := c0
				for ; j+3 < c1; j += 4 {
					k0 := kd[j*d : (j+1)*d]
					k1 := kd[(j+1)*d : (j+2)*d]
					k2 := kd[(j+2)*d : (j+3)*d]
					k3 := kd[(j+3)*d : (j+4)*d]
					var s0, s1, s2, s3 float32
					for p, qp := range qi {
						s0 += qp * k0[p]
						s1 += qp * k1[p]
						s2 += qp * k2[p]
						s3 += qp * k3[p]
					}
					si[j], si[j+1], si[j+2], si[j+3] = s0, s1, s2, s3
				}
				for ; j < c1; j++ {
					kj := kd[j*d : (j+1)*d]
					var sum float32
					for p, qp := range qi {
						sum += qp * kj[p]
					}
					si[j] = sum
				}
			}
		}
	}
}

// blockedSoftmaxRows scales and softmaxes score rows [lo, hi) in place over
// the non-empty tiles: full tiles run without mask checks, partial tiles
// hoist the mask via RowMask, masked entries are written as exact +0 — the
// value dense maskedSoftmaxRows produces via exp(-Inf). Max, exponential and
// normalisation reproduce SoftmaxRow's arithmetic term for term; the sum
// skips only exact-zero contributions, which IEEE addition from +0 cannot
// observe.
func blockedSoftmaxRows(s *tensor.Tensor, m Mask, qPos []int, kOff int, g *Grid, scale float32, lo, hi int) {
	sk := s.Cols()
	negInf := float32(math.Inf(-1))
	var allowed []bool
	for i := lo; i < hi; i++ {
		rt := i / g.TileRows
		row := s.Row(i)
		kinds := g.Kinds[rt*g.NCols : (rt+1)*g.NCols]
		needMask := false
		for _, kind := range kinds {
			if kind == TilePartial {
				needMask = true
				break
			}
		}
		if needMask {
			if allowed == nil {
				allowed = make([]bool, sk)
			}
			RowMask(m, qPos[i], kOff, allowed)
		}
		// Scale and row max over allowed entries; masked entries of partial
		// tiles become +0 now so a fully-masked row needs no second pass.
		maxv := negInf
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			if kind == TileFull {
				for j := c0; j < c1; j++ {
					row[j] *= scale
					if row[j] > maxv {
						maxv = row[j]
					}
				}
				continue
			}
			for j := c0; j < c1; j++ {
				if allowed[j] {
					row[j] *= scale
					if row[j] > maxv {
						maxv = row[j]
					}
				} else {
					row[j] = 0
				}
			}
		}
		if math.IsInf(float64(maxv), -1) {
			// No allowed key (or every allowed score NaN): dense SoftmaxRow
			// zeroes the row. Empty tiles already hold +0.
			for ct, kind := range kinds {
				if kind == TileEmpty {
					continue
				}
				c0, c1 := g.colBand(ct)
				for j := c0; j < c1; j++ {
					row[j] = 0
				}
			}
			continue
		}
		var sum float32
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			if kind == TileFull {
				for j := c0; j < c1; j++ {
					e := float32(math.Exp(float64(row[j] - maxv)))
					row[j] = e
					sum += e
				}
				continue
			}
			for j := c0; j < c1; j++ {
				if allowed[j] {
					e := float32(math.Exp(float64(row[j] - maxv)))
					row[j] = e
					sum += e
				}
			}
		}
		inv := 1 / sum
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for j := c0; j < c1; j++ {
				row[j] *= inv // masked entries are +0: unchanged
			}
		}
	}
}

// blockedPVRows accumulates o[i] += Σ_j p[i][j]·v[j] for rows [lo, hi),
// skipping empty tiles and, like the dense MatMul kernel, every exact-zero
// probability — one separately-rounded add per nonzero term in increasing
// key order.
func blockedPVRows(o, p, v *tensor.Tensor, g *Grid, lo, hi int) {
	d := v.Cols()
	n := p.Cols()
	od, pd, vd := o.Data, p.Data, v.Data
	for rt := lo / g.TileRows; rt < g.NRows && rt*g.TileRows < hi; rt++ {
		r0, r1 := g.rowBand(rt)
		r0, r1 = max(r0, lo), min(r1, hi)
		// Tile-outer, row-inner: the tile's value slab stays cache-resident
		// across the row band. Each o[i] still accumulates its tiles in
		// increasing-ct (hence increasing-j) order — bitwise unchanged.
		for ct := 0; ct < g.NCols; ct++ {
			if g.Kind(rt, ct) == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for i := r0; i < r1; i++ {
				pi := pd[i*n : (i+1)*n]
				oi := od[i*d : (i+1)*d]
				j := c0
				for ; j+3 < c1; j += 4 {
					a0, a1, a2, a3 := pi[j], pi[j+1], pi[j+2], pi[j+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := vd[j*d : (j+1)*d]
					b1 := vd[(j+1)*d : (j+2)*d]
					b2 := vd[(j+2)*d : (j+3)*d]
					b3 := vd[(j+3)*d : (j+4)*d]
					if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
						for c := range oi {
							x := oi[c]
							x += a0 * b0[c]
							x += a1 * b1[c]
							x += a2 * b2[c]
							x += a3 * b3[c]
							oi[c] = x
						}
						continue
					}
					for c := range oi {
						x := oi[c]
						if a0 != 0 {
							x += a0 * b0[c]
						}
						if a1 != 0 {
							x += a1 * b1[c]
						}
						if a2 != 0 {
							x += a2 * b2[c]
						}
						if a3 != 0 {
							x += a3 * b3[c]
						}
						oi[c] = x
					}
				}
				for ; j < c1; j++ {
					av := pi[j]
					if av == 0 {
						continue
					}
					bj := vd[j*d : (j+1)*d]
					for c := range oi {
						oi[c] += av * bj[c]
					}
				}
			}
		}
	}
}

// blockedKeyRows accumulates out[j] += Σ_i sT[j][i]·b[i] for key rows
// [lo, hi), where sT is the [sk, sq] transpose of a score-shaped matrix.
// Reduction runs over query row-tiles in increasing order, skipping empty
// tiles and exact-zero coefficients — the dense TMatMul ordering. Serves
// both dV (sT = Pᵀ, b = dO) and dK (sT = dSᵀ, b = q).
func blockedKeyRows(out, sT, b *tensor.Tensor, g *Grid, lo, hi int) {
	d := b.Cols()
	n := sT.Cols()
	od, sd, bd := out.Data, sT.Data, b.Data
	for ct := lo / g.TileCols; ct < g.NCols && ct*g.TileCols < hi; ct++ {
		c0, c1 := g.colBand(ct)
		c0, c1 = max(c0, lo), min(c1, hi)
		// Tile-outer, key-row-inner: the tile's b slab stays cache-resident
		// across the key band. Each out[j] still accumulates its tiles in
		// increasing-rt (hence increasing-i) order — bitwise unchanged.
		for rt := 0; rt < g.NRows; rt++ {
			if g.Kind(rt, ct) == TileEmpty {
				continue
			}
			r0, r1 := g.rowBand(rt)
			for j := c0; j < c1; j++ {
				sj := sd[j*n : (j+1)*n]
				oj := od[j*d : (j+1)*d]
				i := r0
				for ; i+3 < r1; i += 4 {
					a0, a1, a2, a3 := sj[i], sj[i+1], sj[i+2], sj[i+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := bd[i*d : (i+1)*d]
					b1 := bd[(i+1)*d : (i+2)*d]
					b2 := bd[(i+2)*d : (i+3)*d]
					b3 := bd[(i+3)*d : (i+4)*d]
					if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
						for c := range oj {
							x := oj[c]
							x += a0 * b0[c]
							x += a1 * b1[c]
							x += a2 * b2[c]
							x += a3 * b3[c]
							oj[c] = x
						}
						continue
					}
					for c := range oj {
						x := oj[c]
						if a0 != 0 {
							x += a0 * b0[c]
						}
						if a1 != 0 {
							x += a1 * b1[c]
						}
						if a2 != 0 {
							x += a2 * b2[c]
						}
						if a3 != 0 {
							x += a3 * b3[c]
						}
						oj[c] = x
					}
				}
				for ; i < r1; i++ {
					av := sj[i]
					if av == 0 {
						continue
					}
					bi := bd[i*d : (i+1)*d]
					for c := range oj {
						oj[c] += av * bi[c]
					}
				}
			}
		}
	}
}

// blockedBackward is the blocked engine behind Backward: the same four
// gradient products as DenseBackward with every sweep restricted to
// non-empty tiles. Masked probabilities are exact zeros, so dense already
// skips their terms value-by-value; the grid skips them tile-by-tile
// (including the dP and dS sweeps dense pays in full) without changing a
// bit.
func blockedBackward(q, k, v, p, dO *tensor.Tensor, m Mask, qPos []int, kOff int, rec *Recorder) (dQ, dK, dV *tensor.Tensor) {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	g := BuildGrid(m, qPos, kOff, sk)
	recordGrid(g)
	rec.Record(g, 4, d)
	eff := effFLOPs(g, d)
	tensor.CountMatMulFLOPs(sk, sq, d, eff) // dV = pᵀ@dO
	tensor.CountMatMulFLOPs(sq, d, sk, eff) // dP = dO@vᵀ
	tensor.CountMatMulFLOPs(sq, sk, d, eff) // dQ = dS@k
	tensor.CountMatMulFLOPs(sk, sq, d, eff) // dK = dSᵀ@q

	work := sweptWork(g, d)

	// dV: reduce over query rows per key row; transpose P once for
	// contiguous access (a pure permutation, bitwise invisible).
	pT := tensor.Transpose(p)
	dV = tensor.Get(sk, d)
	if workers := tensor.Workers(sk, work); workers <= 1 {
		blockedKeyRows(dV, pT, dO, g, 0, sk)
	} else {
		tensor.ParallelRows(sk, workers, func(lo, hi int) {
			blockedKeyRows(dV, pT, dO, g, lo, hi)
		})
	}
	tensor.Put(pT)

	// dP, dS = P ∘ (dP − rowsum(dP ∘ P)) and dQ, fused per query row.
	// dS is zero-filled so its empty tiles hold exact zeros for the dK
	// reduction (dense writes signed zeros there; both are skipped).
	dP := tensor.GetUninit(sq, sk)
	dS := tensor.Get(sq, sk)
	dQ = tensor.Get(sq, d)
	qBody := func(lo, hi int) {
		blockedScoreRows(dP, dO, v, g, lo, hi)
		blockedSoftmaxBackwardRows(dS, p, dP, g, lo, hi)
		blockedPVRows(dQ, dS, k, g, lo, hi)
	}
	if workers := tensor.Workers(sq, 2*work); workers <= 1 {
		qBody(0, sq)
	} else {
		tensor.ParallelRows(sq, workers, qBody)
	}
	tensor.Put(dP)
	dQ.Scale(scale)

	// dK: reduce over query rows per key row from the transposed dS.
	dST := tensor.Transpose(dS)
	tensor.Put(dS)
	dK = tensor.Get(sk, d)
	if workers := tensor.Workers(sk, work); workers <= 1 {
		blockedKeyRows(dK, dST, q, g, 0, sk)
	} else {
		tensor.ParallelRows(sk, workers, func(lo, hi int) {
			blockedKeyRows(dK, dST, q, g, lo, hi)
		})
	}
	tensor.Put(dST)
	dK.Scale(scale)
	return dQ, dK, dV
}

// blockedSoftmaxBackwardRows writes dS = P ∘ (dP − rowsum(dP ∘ P)) for rows
// [lo, hi) over the non-empty tiles. The row dot accumulates every swept
// term like dense softmaxBackwardRows; empty-tile terms are P·dP products
// with P exactly +0, whose signed-zero contributions IEEE addition from a
// non-negative accumulator cannot observe.
func blockedSoftmaxBackwardRows(dS, p, dP *tensor.Tensor, g *Grid, lo, hi int) {
	for i := lo; i < hi; i++ {
		rt := i / g.TileRows
		pi, dpi, dsi := p.Row(i), dP.Row(i), dS.Row(i)
		kinds := g.Kinds[rt*g.NCols : (rt+1)*g.NCols]
		var dot float32
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for j := c0; j < c1; j++ {
				dot += pi[j] * dpi[j]
			}
		}
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for j := c0; j < c1; j++ {
				dsi[j] = pi[j] * (dpi[j] - dot)
			}
		}
	}
}

// blockedPartialInto is the blocked engine behind PartialForwardInto: the
// score sweep and the online-softmax accumulation both touch only non-empty
// tiles. The dense sweep already skips masked keys per element, so tile
// skipping drops exactly the per-element checks — the M/L statistics and
// the unnormalised output match bit for bit.
func blockedPartialInto(out *Partial, q, k, v *tensor.Tensor, m Mask, qPos []int, kOff int) *Partial {
	sq, d := q.Rows(), q.Cols()
	sk := k.Rows()
	scale := float32(1 / math.Sqrt(float64(d)))
	g := BuildGrid(m, qPos, kOff, sk)
	recordGrid(g)
	tensor.CountMatMulFLOPs(sq, d, sk, effFLOPs(g, d))
	s := tensor.GetUninit(sq, sk)
	out = preparePartial(out, sq, d)
	body := func(lo, hi int) {
		blockedScoreRows(s, q, k, g, lo, hi)
		blockedPartialSweepRows(out, s, v, m, qPos, kOff, g, scale, lo, hi)
	}
	if workers := tensor.Workers(sq, 2*sweptWork(g, d)); workers <= 1 {
		body(0, sq)
	} else {
		tensor.ParallelRows(sq, workers, body)
	}
	tensor.Put(s)
	return out
}

// blockedPartialSweepRows is partialSweepRows restricted to non-empty tiles:
// full tiles scale/exp/accumulate with no mask checks, partial tiles keep
// the hoisted RowMask, empty tiles contribute nothing — exactly the keys the
// dense sweep's per-element check skips.
func blockedPartialSweepRows(out *Partial, s, v *tensor.Tensor, m Mask, qPos []int, kOff int, g *Grid, scale float32, lo, hi int) {
	sk, d := s.Cols(), v.Cols()
	negInf := float32(math.Inf(-1))
	var allowed []bool
	for i := lo; i < hi; i++ {
		rt := i / g.TileRows
		row := s.Row(i)
		kinds := g.Kinds[rt*g.NCols : (rt+1)*g.NCols]
		needMask := false
		for _, kind := range kinds {
			if kind == TilePartial {
				needMask = true
				break
			}
		}
		if needMask {
			if allowed == nil {
				allowed = make([]bool, sk)
			}
			RowMask(m, qPos[i], kOff, allowed)
		}
		maxv := negInf
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for j := c0; j < c1; j++ {
				if kind == TileFull || allowed[j] {
					row[j] *= scale
					if row[j] > maxv {
						maxv = row[j]
					}
				}
			}
		}
		out.M[i] = maxv
		out.L[i] = 0
		if math.IsInf(float64(maxv), -1) {
			continue
		}
		oi := out.O.Row(i)
		var l float32
		for ct, kind := range kinds {
			if kind == TileEmpty {
				continue
			}
			c0, c1 := g.colBand(ct)
			for j := c0; j < c1; j++ {
				if kind != TileFull && !allowed[j] {
					continue
				}
				e := float32(math.Exp(float64(row[j] - maxv)))
				l += e
				vj := v.Row(j)
				for c := 0; c < d; c++ {
					oi[c] += e * vj[c]
				}
			}
		}
		out.L[i] = l
	}
}
