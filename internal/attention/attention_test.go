package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"llama4d/internal/tensor"
)

func randQKV(seed int64, sq, sk, d int) (q, k, v *tensor.Tensor) {
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandN(rng, 0.5, sq, d), tensor.RandN(rng, 0.5, sk, d), tensor.RandN(rng, 0.5, sk, d)
}

func TestMaskSemantics(t *testing.T) {
	if !(Full{}).Allowed(0, 5) {
		t.Fatal("Full must allow everything")
	}
	c := Causal{}
	if !c.Allowed(3, 3) || !c.Allowed(3, 0) || c.Allowed(3, 4) {
		t.Fatal("Causal semantics wrong")
	}
	d := Document{DocID: []int{0, 0, 1, 1}}
	if !d.Allowed(1, 0) || d.Allowed(2, 1) || d.Allowed(1, 2) || !d.Allowed(3, 2) {
		t.Fatal("Document semantics wrong")
	}
}

func TestDocIDsFromLengths(t *testing.T) {
	ids := DocIDsFromLengths([]int{3, 3, 8, 2}, 16)
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	// Truncation mid-document.
	ids = DocIDsFromLengths([]int{3, 10}, 5)
	if len(ids) != 5 || ids[4] != 1 {
		t.Fatalf("truncated ids = %v", ids)
	}
	// Shorter than seq: padded with singleton docs.
	ids = DocIDsFromLengths([]int{2}, 4)
	if len(ids) != 4 || ids[2] == ids[3] || ids[1] == ids[2] {
		t.Fatalf("padded ids = %v", ids)
	}
}

func TestDocIDsFromEOS(t *testing.T) {
	eos := 99
	tokens := []int{5, 6, eos, 7, eos, 8}
	ids := DocIDsFromEOS(tokens, eos)
	want := []int{0, 0, 0, 1, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestAllowedPairsCausal(t *testing.T) {
	seq := 16
	n := AllowedPairs(Causal{}, Iota(seq), seq)
	if n != seq*(seq+1)/2 {
		t.Fatalf("causal pairs = %d, want %d", n, seq*(seq+1)/2)
	}
}

func TestAllowedPairsDocumentLessThanCausal(t *testing.T) {
	seq := 64
	ids := DocIDsFromLengths([]int{16, 16, 16, 16}, seq)
	nd := AllowedPairs(Document{DocID: ids}, Iota(seq), seq)
	nc := AllowedPairs(Causal{}, Iota(seq), seq)
	if nd >= nc {
		t.Fatalf("document pairs %d must be < causal %d", nd, nc)
	}
	// Four equal docs: each contributes 16*17/2.
	if want := 4 * 16 * 17 / 2; nd != want {
		t.Fatalf("document pairs = %d, want %d", nd, want)
	}
}

func TestForwardRowsAreConvexCombinations(t *testing.T) {
	q, k, v := randQKV(1, 8, 8, 4)
	out := Forward(q, k, v, Causal{}, Iota(8), 0)
	// Each P row must be a probability distribution over allowed keys.
	for i := 0; i < 8; i++ {
		var sum float32
		for j := 0; j < 8; j++ {
			p := out.P.At(i, j)
			if j > i && p != 0 {
				t.Fatalf("P[%d,%d]=%v violates causal mask", i, j, p)
			}
			if p < 0 {
				t.Fatalf("negative probability")
			}
			sum += p
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestForwardFirstTokenAttendsSelfOnly(t *testing.T) {
	q, k, v := randQKV(2, 4, 4, 8)
	out := Forward(q, k, v, Causal{}, Iota(4), 0)
	// Row 0 attends only key 0 ⇒ output row 0 == v row 0.
	for c := 0; c < 8; c++ {
		if math.Abs(float64(out.O.At(0, c)-v.At(0, c))) > 1e-5 {
			t.Fatalf("first token output must equal first value row")
		}
	}
}

func TestDocumentMaskBlocksCrossDocAttention(t *testing.T) {
	sq := 8
	q, k, v := randQKV(3, sq, sq, 4)
	ids := DocIDsFromLengths([]int{4, 4}, sq)
	out := Forward(q, k, v, Document{DocID: ids}, Iota(sq), 0)
	// Token 4 starts doc 1: it attends only itself.
	for c := 0; c < 4; c++ {
		if math.Abs(float64(out.O.At(4, c)-v.At(4, c))) > 1e-5 {
			t.Fatal("doc-boundary token must attend only itself")
		}
	}
	for j := 0; j < 4; j++ {
		if out.P.At(4, j) != 0 {
			t.Fatal("cross-document probability must be zero")
		}
	}
}

// streamedForward streams key blocks of size blockSize through
// PartialForwardInto/MergeInPlace and finalises in place — the
// Flash-Attention-V2 structure the retired FlashForward implemented, kept
// here so the block-merge path retains full equivalence coverage against
// Forward (whose blocked engine is now the single streamed implementation).
func streamedForward(q, k, v *tensor.Tensor, m Mask, qPos []int, blockSize int) *tensor.Tensor {
	sk := k.Rows()
	if blockSize <= 0 {
		blockSize = sk
	}
	var acc, scratch *Partial
	for off := 0; off < sk; off += blockSize {
		end := off + blockSize
		if end > sk {
			end = sk
		}
		if acc == nil {
			acc = PartialForward(q, k.RowSlice(off, end), v.RowSlice(off, end), m, qPos, off)
			continue
		}
		scratch = PartialForwardInto(scratch, q, k.RowSlice(off, end), v.RowSlice(off, end), m, qPos, off)
		MergeInPlace(acc, scratch)
	}
	ReleasePartial(scratch)
	if acc == nil {
		return tensor.New(q.Rows(), q.Cols())
	}
	return FinalizeInPlace(acc)
}

func TestStreamedMatchesForward(t *testing.T) {
	for _, blockSize := range []int{1, 2, 3, 8, 64} {
		q, k, v := randQKV(4, 16, 16, 8)
		naive := Forward(q, k, v, Causal{}, Iota(16), 0).O
		flash := streamedForward(q, k, v, Causal{}, Iota(16), blockSize)
		if d := tensor.MaxDiff(naive, flash); d > 1e-5 {
			t.Fatalf("block %d: streamed vs naive diff %v", blockSize, d)
		}
	}
}

func TestStreamedMatchesForwardDocumentMask(t *testing.T) {
	seq := 32
	ids := DocIDsFromLengths([]int{5, 11, 9, 7}, seq)
	q, k, v := randQKV(5, seq, seq, 8)
	m := Document{DocID: ids}
	naive := Forward(q, k, v, m, Iota(seq), 0).O
	for _, bs := range []int{4, 7, 32} {
		flash := streamedForward(q, k, v, m, Iota(seq), bs)
		if d := tensor.MaxDiff(naive, flash); d > 1e-5 {
			t.Fatalf("doc mask, block %d: diff %v", bs, d)
		}
	}
}

func TestMergeCommutative(t *testing.T) {
	q, k, v := randQKV(6, 8, 16, 4)
	pa := PartialForward(q, k.RowSlice(0, 8), v.RowSlice(0, 8), Causal{}, Iota(8), 0)
	pb := PartialForward(q, k.RowSlice(8, 16), v.RowSlice(8, 16), Causal{}, Iota(8), 8)
	ab := Finalize(Merge(pa, pb))
	ba := Finalize(Merge(pb, pa))
	if d := tensor.MaxDiff(ab, ba); d > 1e-5 {
		t.Fatalf("merge not commutative: %v", d)
	}
}

func TestMergeAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		q, k, v := randQKV(seed, 6, 12, 4)
		var parts []*Partial
		for i := 0; i < 3; i++ {
			parts = append(parts, PartialForward(q, k.RowSlice(i*4, i*4+4), v.RowSlice(i*4, i*4+4), Causal{}, Iota(6), i*4))
		}
		left := Finalize(Merge(Merge(parts[0], parts[1]), parts[2]))
		right := Finalize(Merge(parts[0], Merge(parts[1], parts[2])))
		return tensor.MaxDiff(left, right) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeWithEmptyBlockIsNeutral(t *testing.T) {
	q, k, v := randQKV(7, 4, 4, 4)
	full := PartialForward(q, k, v, Causal{}, Iota(4), 0)
	// A block whose keys are all in the future is fully masked for all rows.
	empty := PartialForward(q, k, v, Causal{}, Iota(4), 100)
	merged := Finalize(Merge(full, empty))
	want := Finalize(full)
	if d := tensor.MaxDiff(merged, want); d > 1e-6 {
		t.Fatalf("neutral merge changed result by %v", d)
	}
}

func TestQPosOffsetsEquivalence(t *testing.T) {
	// Computing rows 8..15 with explicit positions must equal slicing the
	// full computation — the property CP sharding relies on.
	seq := 16
	q, k, v := randQKV(8, seq, seq, 8)
	fullOut := Forward(q, k, v, Causal{}, Iota(seq), 0).O
	qPos := []int{8, 9, 10, 11, 12, 13, 14, 15}
	partOut := Forward(q.RowSlice(8, 16), k, v, Causal{}, qPos, 0).O
	if d := tensor.MaxDiff(partOut, fullOut.RowSlice(8, 16)); d > 1e-5 {
		t.Fatalf("qPos slicing diff %v", d)
	}
}

func TestBackwardGradCheck(t *testing.T) {
	// Central finite differences on a scalar loss L = sum(O ∘ W).
	sq, sk, d := 5, 7, 4
	q, k, v := randQKV(9, sq, sk, d)
	rng := rand.New(rand.NewSource(10))
	w := tensor.RandN(rng, 1, sq, d)
	masks := []Mask{Full{}, Causal{}, Document{DocID: DocIDsFromLengths([]int{3, 4}, 7)}}
	for mi, m := range masks {
		qPos := Iota(sq)
		out := Forward(q, k, v, m, qPos, 0)
		dO := w
		dQ, dK, dV := Backward(q, k, v, out.P, dO, m, qPos, 0)

		loss := func() float64 {
			o := Forward(q, k, v, m, qPos, 0).O
			return tensor.Dot(o, w)
		}
		check := func(name string, param, grad *tensor.Tensor) {
			const eps = 1e-3
			for _, idx := range []int{0, 1, len(param.Data) / 2, len(param.Data) - 1} {
				orig := param.Data[idx]
				param.Data[idx] = orig + eps
				lp := loss()
				param.Data[idx] = orig - eps
				lm := loss()
				param.Data[idx] = orig
				numeric := (lp - lm) / (2 * eps)
				analytic := float64(grad.Data[idx])
				if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
					t.Fatalf("mask %d %s[%d]: numeric %v analytic %v", mi, name, idx, numeric, analytic)
				}
			}
		}
		check("dQ", q, dQ)
		check("dK", k, dK)
		check("dV", v, dV)
	}
}

func TestBackwardMaskedGradientsZero(t *testing.T) {
	// Keys that no query may attend must receive exactly zero gradient.
	sq := 4
	q, k, v := randQKV(11, sq, sq, 4)
	ids := DocIDsFromLengths([]int{2, 2}, sq)
	out := Forward(q, k, v, Document{DocID: ids}, Iota(sq), 0)
	rng := rand.New(rand.NewSource(12))
	dO := tensor.RandN(rng, 1, sq, 4)
	_, dK, dV := Backward(q, k, v, out.P, dO, Document{DocID: ids}, Iota(sq), 0)
	_ = dK
	// Key 3 is attended only by query 3; key 1 only by query 1 within doc 0...
	// Stronger check: zero dO for queries of doc 1 ⇒ zero dV for keys of doc 1.
	dO2 := dO.Clone()
	dO2.Row(2)[0] = 0
	for c := range dO2.Row(2) {
		dO2.Row(2)[c] = 0
		dO2.Row(3)[c] = 0
	}
	_, _, dV2 := Backward(q, k, v, out.P, dO2, Document{DocID: ids}, Iota(sq), 0)
	for j := 2; j < 4; j++ {
		for c := 0; c < 4; c++ {
			if dV2.At(j, c) != 0 {
				t.Fatalf("dV[%d] must be zero when doc-1 outputs have no gradient", j)
			}
		}
	}
	_ = dV
}

func TestStreamedFullyMaskedRowIsZero(t *testing.T) {
	q, k, v := randQKV(13, 2, 4, 4)
	// Query positions before all keys: nothing allowed under causal mask.
	out := streamedForward(q, k, v, Causal{}, []int{-1, -2}, 4)
	for _, x := range out.Data {
		if x != 0 {
			t.Fatalf("fully masked streamed rows must be zero, got %v", out.Data)
		}
	}
	// The blocked engine classifies negative-query rows the same way.
	blocked := Forward(q, k, v, Causal{}, []int{-1, -2}, 0)
	for _, x := range blocked.O.Data {
		if x != 0 {
			t.Fatalf("fully masked blocked rows must be zero, got %v", blocked.O.Data)
		}
	}
}

func BenchmarkDenseAttention(b *testing.B) {
	q, k, v := randQKV(1, 256, 256, 64)
	pos := Iota(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DenseForward(q, k, v, Causal{}, pos, 0)
	}
}

func BenchmarkBlockedAttention(b *testing.B) {
	q, k, v := randQKV(1, 256, 256, 64)
	pos := Iota(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Forward(q, k, v, Causal{}, pos, 0)
	}
}
