package attention

import (
	"fmt"
	"math/rand"
	"testing"

	"llama4d/internal/tensor"
)

// Streaming property: StreamScores over ANY partition of the key axis, fed in
// ANY order, followed by StreamFinish, equals the one-shot Forward (blocked
// or dense — they agree) bit for bit, O and P planes both.
func TestStreamMatchesForwardBitwise(t *testing.T) {
	seq, d := 160, 16
	rng := rand.New(rand.NewSource(31))
	q := tensor.RandN(rng, 0.5, seq, d)
	k := tensor.RandN(rng, 0.5, seq, d)
	v := tensor.RandN(rng, 0.5, seq, d)

	docIDs := DocIDsFromLengths([]int{70, 40, 50}, seq)
	masks := map[string]Mask{
		"full":   Full{},
		"causal": Causal{},
		"doc":    Document{DocID: docIDs},
	}
	// Query row layouts: whole sequence, a contiguous slice, a strided subset.
	qLayouts := map[string][]int{
		"all":     Iota(seq),
		"slice":   iotaRange(40, 120),
		"strided": strided(seq, 3, 1),
	}
	// Key-axis partitions: one block, even blocks, ragged blocks.
	partitions := map[string][]int{ // block boundaries (ascending, 0 and seq implied)
		"one":    {},
		"even":   {40, 80, 120},
		"ragged": {13, 64, 77, 150},
	}

	for maskName, m := range masks {
		for qName, qPos := range qLayouts {
			ql := packQ(q, qPos)
			want := Forward(ql, k, v, m, qPos, 0)
			for partName, cuts := range partitions {
				bounds := append(append([]int{0}, cuts...), seq)
				for _, reverse := range []bool{false, true} {
					g := BuildGrid(m, qPos, 0, seq)
					s := tensor.Get(len(qPos), seq)
					nb := len(bounds) - 1
					for bi := 0; bi < nb; bi++ {
						b := bi
						if reverse {
							b = nb - 1 - bi
						}
						lo, hi := bounds[b], bounds[b+1]
						StreamScores(s, ql, k.RowSlice(lo, hi), 0, 0, lo, hi-lo, g)
					}
					got := StreamFinish(s, v, m, qPos, g, nil)
					name := fmt.Sprintf("%s/%s/%s rev=%v", maskName, qName, partName, reverse)
					if !tensor.BitwiseEqual(got.O, want.O) {
						t.Fatalf("%s: streamed O differs from one-shot Forward", name)
					}
					if !tensor.BitwiseEqual(got.P, want.P) {
						t.Fatalf("%s: streamed P differs from one-shot Forward", name)
					}
					tensor.Put(got.O, got.P)
				}
			}
			tensor.Put(want.O, want.P, ql)
		}
	}
}

// StreamScores must read the right head's columns out of a packed multi-head
// K block (kvOff selects the head), matching a pre-sliced single-head call.
func TestStreamScoresHeadOffset(t *testing.T) {
	seq, d, heads := 96, 8, 3
	rng := rand.New(rand.NewSource(32))
	q := tensor.RandN(rng, 0.5, seq, d)
	kAll := tensor.RandN(rng, 0.5, seq, heads*d)
	qPos := Iota(seq)
	g := BuildGrid(Causal{}, qPos, 0, seq)
	for h := 0; h < heads; h++ {
		kh := tensor.GetUninit(seq, d)
		for i := 0; i < seq; i++ {
			copy(kh.Row(i), kAll.Row(i)[h*d:(h+1)*d])
		}
		want := tensor.Get(seq, seq)
		StreamScores(want, q, kh, 0, 0, 0, seq, g)
		got := tensor.Get(seq, seq)
		StreamScores(got, q, kAll, h*d, 0, 0, seq, g)
		if !tensor.BitwiseEqual(got, want) {
			t.Fatalf("head %d: kvOff read differs from pre-sliced block", h)
		}
		tensor.Put(kh, want, got)
	}
}

// The recording contract: a streamed head must record the same tile census
// and FLOP totals as the one-shot blocked call it replaces.
func TestStreamFinishRecordingParity(t *testing.T) {
	seq, d := 130, 8
	rng := rand.New(rand.NewSource(33))
	q := tensor.RandN(rng, 0.5, seq, d)
	k := tensor.RandN(rng, 0.5, seq, d)
	v := tensor.RandN(rng, 0.5, seq, d)
	m := Document{DocID: DocIDsFromLengths([]int{65, 65}, seq)}
	qPos := Iota(seq)

	recWant := &Recorder{}
	want := ForwardRecorded(q, k, v, m, qPos, 0, recWant)
	recGot := &Recorder{}
	g := BuildGrid(m, qPos, 0, seq)
	s := tensor.Get(seq, seq)
	StreamScores(s, q, k, 0, 0, 0, seq, g)
	got := StreamFinish(s, v, m, qPos, g, recGot)
	if !tensor.BitwiseEqual(got.O, want.O) {
		t.Fatal("streamed O differs")
	}
	if *recGot != *recWant {
		t.Fatalf("recording differs: streamed %+v one-shot %+v", recGot, recWant)
	}
	tensor.Put(want.O, want.P, got.O, got.P)
}

func iotaRange(lo, hi int) []int {
	p := make([]int, hi-lo)
	for i := range p {
		p[i] = lo + i
	}
	return p
}

func strided(seq, step, off int) []int {
	var p []int
	for i := off; i < seq; i += step {
		p = append(p, i)
	}
	return p
}

func packQ(q *tensor.Tensor, pos []int) *tensor.Tensor {
	out := tensor.GetUninit(len(pos), q.Cols())
	for i, p := range pos {
		copy(out.Row(i), q.Row(p))
	}
	return out
}
