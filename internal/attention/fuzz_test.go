package attention

import "testing"

// FuzzDocIDsFromEOS fuzzes the eos-boundary document-id derivation against
// its contract: the eos token belongs to the document it terminates, the
// next position starts a new document, and the resulting id vector is
// consistent with the DocStarts interval index, the closed-form pair
// counters, and the blocked engine's grid classifier. Edge cases seeded
// explicitly: eos as the final token, back-to-back eos (zero-length
// documents), no eos at all (truncated document spanning the sequence).
func FuzzDocIDsFromEOS(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 0}, byte(0)) // two complete documents
	f.Add([]byte{1, 2, 3, 0}, byte(0))    // eos as the final token
	f.Add([]byte{0, 0, 0}, byte(0))       // back-to-back eos: single-token documents
	f.Add([]byte{}, byte(0))              // empty sequence
	f.Add([]byte{5, 6, 7}, byte(0))       // no eos: one truncated document
	f.Add([]byte{7, 0, 7, 7, 0, 7}, byte(7))
	f.Fuzz(func(t *testing.T, tokens []byte, eos byte) {
		toks := make([]int, len(tokens))
		for i, b := range tokens {
			toks[i] = int(b)
		}
		ids := DocIDsFromEOS(toks, int(eos))
		if len(ids) != len(toks) {
			t.Fatalf("got %d ids for %d tokens", len(ids), len(toks))
		}
		doc := 0
		for i, id := range ids {
			if id != doc {
				t.Fatalf("position %d: id %d, want %d (eos belongs to the document it ends)", i, id, doc)
			}
			if toks[i] == int(eos) {
				doc++
			}
		}
		checkDocIDsConsistent(t, ids)
	})
}

// FuzzDocIDsFromLengths fuzzes the packed-length expansion: the id vector
// always covers exactly seq positions, ids are non-decreasing, no document
// exceeds its declared length, positions past the declared documents are
// singleton padding documents, and the derived index structures agree.
// Edge cases seeded explicitly: zero-length documents, a last document
// truncated by the sequence end, and an all-padding tail.
func FuzzDocIDsFromLengths(f *testing.F) {
	f.Add([]byte{3, 5, 2}, 10) // exact cover
	f.Add([]byte{3, 0, 2}, 8)  // zero-length document + padding tail
	f.Add([]byte{9}, 4)        // last document truncated
	f.Add([]byte{}, 5)         // all-padding tail
	f.Add([]byte{2, 2}, 0)     // empty sequence
	f.Fuzz(func(t *testing.T, lensBytes []byte, seq int) {
		if seq < 0 || seq > 1<<10 {
			t.Skip("sequence length outside the packing domain")
		}
		lengths := make([]int, len(lensBytes))
		for i, b := range lensBytes {
			lengths[i] = int(b)
		}
		ids := DocIDsFromLengths(lengths, seq)
		if len(ids) != seq {
			t.Fatalf("got %d ids for seq %d", len(ids), seq)
		}
		counts := map[int]int{}
		for i, id := range ids {
			if i > 0 && id < ids[i-1] {
				t.Fatalf("ids decrease at position %d: %d after %d", i, id, ids[i-1])
			}
			counts[id]++
		}
		for id, n := range counts {
			if id < len(lengths) {
				if n > lengths[id] {
					t.Fatalf("document %d has %d positions, declared length %d", id, n, lengths[id])
				}
			} else if n != 1 {
				t.Fatalf("padding document %d has %d positions, want singleton", id, n)
			}
		}
		checkDocIDsConsistent(t, ids)
	})
}

// checkDocIDsConsistent cross-checks one document-id vector through every
// index structure built from it: DocStarts must be monotone and point at
// same-document positions, FastAllowedPairs must agree with the per-element
// AllowedPairs oracle, and the blocked engine's grid must report the same
// allowed-pair count.
func checkDocIDsConsistent(t *testing.T, ids []int) {
	t.Helper()
	starts := DocStarts(ids)
	for i := range starts {
		if starts[i] > i {
			t.Fatalf("position %d: start %d after the position itself", i, starts[i])
		}
		if ids[starts[i]] != ids[i] {
			t.Fatalf("position %d: start %d lies in document %d, not %d", i, starts[i], ids[starts[i]], ids[i])
		}
		if i > 0 && starts[i] < starts[i-1] {
			t.Fatalf("starts decrease at position %d", i)
		}
	}
	if len(ids) == 0 {
		return
	}
	qPos := Iota(len(ids))
	want := int64(AllowedPairs(Document{DocID: ids}, qPos, len(ids)))
	if got := FastAllowedPairs(qPos, starts); got != want {
		t.Fatalf("FastAllowedPairs %d, per-element oracle %d", got, want)
	}
	if g := BuildGrid(Document{DocID: ids}, qPos, 0, len(ids)); g.AllowedPairs != want {
		t.Fatalf("grid classifier counts %d allowed pairs, oracle %d", g.AllowedPairs, want)
	}
}
