// Package attention implements the attention kernels of the reproduction:
// a naive masked-attention oracle with an exact backward pass, a flash-style
// online-softmax kernel producing log-sum-exp statistics, and the
// partial-result merging rule that ring attention (the paper's CP baseline,
// §4/§7.2) relies on.
//
// All kernels operate on a single head: Q is [sq, d], K and V are [sk, d].
// Query rows carry explicit global positions so that context-parallel ranks,
// which own non-contiguous chunks of the sequence (§4 "Implementation"), can
// evaluate masks in global coordinates against the all-gathered K/V.
package attention

// Mask decides which key positions a query position may attend to, in global
// sequence coordinates.
type Mask interface {
	// Allowed reports whether query position q may attend key position k.
	Allowed(q, k int) bool
}

// Full allows every query to attend every key (bidirectional attention, used
// by the ViT image encoder).
type Full struct{}

// Allowed implements Mask.
func (Full) Allowed(q, k int) bool { return true }

// Causal allows each query to attend itself and earlier positions — the
// standard autoregressive LM mask.
type Causal struct{}

// Allowed implements Mask.
func (Causal) Allowed(q, k int) bool { return k <= q }

// Document is the paper's document mask (block-causal): causal attention
// restricted to tokens of the same document. DocID[t] identifies the
// document containing global position t.
type Document struct {
	DocID []int
}

// Allowed implements Mask.
func (d Document) Allowed(q, k int) bool {
	return k <= q && d.DocID[q] == d.DocID[k]
}

// DocIDsFromLengths expands per-document token counts into a per-position
// document id vector of total length seq. The final document is truncated or
// the last id extended so the result always covers exactly seq positions —
// matching the paper's packing where a sequence may end mid-document.
func DocIDsFromLengths(lengths []int, seq int) []int {
	ids := make([]int, 0, seq)
	doc := 0
	for _, n := range lengths {
		for i := 0; i < n && len(ids) < seq; i++ {
			ids = append(ids, doc)
		}
		doc++
		if len(ids) >= seq {
			break
		}
	}
	for len(ids) < seq {
		ids = append(ids, doc)
		doc++ // remaining positions are singleton documents (padding)
	}
	return ids
}

// DocIDsFromEOS derives document ids from token ids: an eos token terminates
// its document (the eos belongs to the document it ends), the next token
// starts a new one. This is the paper's eos_id-dependent document boundary.
func DocIDsFromEOS(tokens []int, eosID int) []int {
	ids := make([]int, len(tokens))
	doc := 0
	for i, t := range tokens {
		ids[i] = doc
		if t == eosID {
			doc++
		}
	}
	return ids
}

// RowMask fills dst[j] = m.Allowed(q, kOff+j) for one query row against the
// key block at kOff..kOff+len(dst)-1, hoisting the mask out of the score
// kernels' inner loops. The built-in mask types get direct loops — no
// interface dispatch per element, and the causal cut-off turns the tail into
// a straight fill — which is what stops document masks from dominating the
// attention score loop. Unknown mask implementations fall back to the
// per-element interface call, so the semantics are identical by
// construction.
func RowMask(m Mask, q, kOff int, dst []bool) {
	switch mm := m.(type) {
	case Full:
		for j := range dst {
			dst[j] = true
		}
	case Causal:
		cut := causalCut(q, kOff, len(dst))
		for j := 0; j < cut; j++ {
			dst[j] = true
		}
		for j := cut; j < len(dst); j++ {
			dst[j] = false
		}
	case Document:
		cut := causalCut(q, kOff, len(dst))
		for j := cut; j < len(dst); j++ {
			dst[j] = false
		}
		if cut == 0 {
			return
		}
		// q is a valid index here: cut > 0 implies some k ≤ q exists, and
		// Document.Allowed would have indexed DocID[q] for it too.
		qd := mm.DocID[q]
		ids := mm.DocID[kOff : kOff+cut]
		for j, id := range ids {
			dst[j] = id == qd
		}
	default:
		for j := range dst {
			dst[j] = m.Allowed(q, kOff+j)
		}
	}
}

// causalCut returns the count of key slots j in [0, sk) with kOff+j <= q.
func causalCut(q, kOff, sk int) int {
	cut := q - kOff + 1
	if cut < 0 {
		return 0
	}
	if cut > sk {
		return sk
	}
	return cut
}

// AllowedPairs counts mask-allowed (query, key) pairs for queries at the
// given global positions against keys 0..sk-1. Attention FLOPs are
// proportional to this count, which is how the cost model scales document
// masks relative to full causal masks (Fig 11 and Fig 14).
func AllowedPairs(m Mask, qPos []int, sk int) int {
	n := 0
	for _, q := range qPos {
		for k := 0; k < sk; k++ {
			if m.Allowed(q, k) {
				n++
			}
		}
	}
	return n
}

// Iota returns [0, 1, ..., n-1], the query-position vector of a rank that
// owns the whole sequence.
func Iota(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// DocStarts returns, for each position, the first position of its document.
// For a full causal mask pass a single-document id vector (all zeros).
func DocStarts(docIDs []int) []int {
	starts := make([]int, len(docIDs))
	cur := 0
	for i := range docIDs {
		if i > 0 && docIDs[i] != docIDs[i-1] {
			cur = i
		}
		starts[i] = cur
	}
	return starts
}

// FastAllowedPairs counts document-mask-allowed (query, key) pairs for the
// given query positions in O(len(qPos)): position p attends p−start(p)+1
// keys. Equivalent to AllowedPairs with a Document mask over the full
// sequence, but usable at 131K-token scale (Fig 11/14 workload accounting).
func FastAllowedPairs(qPos []int, docStarts []int) int64 {
	var n int64
	for _, p := range qPos {
		n += int64(p - docStarts[p] + 1)
	}
	return n
}

// FastCausalPairs counts causal-mask pairs for the query positions in O(n).
func FastCausalPairs(qPos []int) int64 {
	var n int64
	for _, p := range qPos {
		n += int64(p + 1)
	}
	return n
}
