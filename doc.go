// Package llama4d reproduces "Scaling Llama 3 Training with Efficient
// Parallelism Strategies" (ISCA 2025): the 4D-parallel (FSDP × TP × CP ×
// PP) training system, its flexible pipeline schedules, all-gather context
// parallelism with document masks, the scale-debugging methodology, and a
// discrete-event performance model that regenerates every table and figure
// of the paper's evaluation. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package llama4d
