module llama4d

go 1.22
